//! Sweep checkpoints: crash-safe progress files for long attack sweeps.
//!
//! A sweep over `strategies × replicas` cells writes one JSON state file,
//! atomically (write to `<path>.tmp`, then rename), after every completed
//! cell. Re-running with `--resume <path>` loads the file, verifies that it
//! belongs to the same `(graph, configuration)` via a fingerprint, and
//! skips every cell already present — an interrupted run finishes instead
//! of restarting.
//!
//! Persistence is hardened against a flaky filesystem:
//!
//! * **Retries** — [`Checkpoint::save_with_retry`] and
//!   [`Checkpoint::load_recovering`] retry transient IO failures under a
//!   [`RetryPolicy`]: capped exponential backoff with *deterministic*
//!   jitter (SplitMix64 of the attempt index — no wall clock, no RNG), so
//!   chaos runs replay identically.
//! * **Torn-write recovery** — every save rotates the previous generation
//!   to `<path>.bak` before renaming the new file into place. A load that
//!   finds the primary file truncated or otherwise unparseable falls back
//!   to the backup; only when both are unusable does it fail, with a typed
//!   [`CheckpointError`].
//! * **Field-level incompatibility diagnosis** — the document stores the
//!   human-readable config string alongside the fingerprint, so resuming
//!   against the wrong sweep reports *which field* differs
//!   (`checkpoint incompatible: seed (...)`), not just a hash mismatch.
//! * **Content checksums** — every saved document embeds an FNV-1a 64
//!   checksum of its canonical serialization, verified on load, so *silent*
//!   corruption (a flipped digit that still parses) is detected and routed
//!   to the backup instead of poisoning a resumed sweep. Legacy files
//!   without the field still load; [`LoadedCheckpoint::checksum_missing`]
//!   lets callers warn.
//!
//! The file format is a small, versioned JSON document:
//!
//! ```json
//! {
//!   "checksum": "f00d…",             // FNV-1a 64 of the canonical document, hex
//!   "version": 1,
//!   "fingerprint": "9a3c…",          // FNV-1a 64 over graph + config, hex
//!   "config": "v1 strategies=[…] …", // optional; enables field diagnosis
//!   "cells": [
//!     {"strategy": "degree", "replica": 0, "resampled": false,
//!      "nodes": 500, "edges": 1234, "critical_fraction": 0.062,
//!      "points": [[0, 500, 1234, 0.0], …]}   // [removed, giant, edges, ⟨s⟩]
//!   ],
//!   "failures": [
//!     {"strategy": "random", "replica": 3, "attempt": 0, "message": "…"}
//!   ]
//! }
//! ```
//!
//! Serialization is hand-rolled (the workspace is offline; no JSON
//! dependency exists) and uses `{:?}` float formatting, which is Rust's
//! shortest round-trip form, so a load-save cycle is lossless.

use crate::percolation::{AttackCurve, CurvePoint};
pub use inet_exec::{RetryExhausted, RetryPolicy};
use inet_graph::Csr;
use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// Format version written by this build; loads of other versions fail.
/// (The optional `config` field is additive: version 1 documents without
/// it still load.)
pub const CHECKPOINT_VERSION: u64 = 1;

/// A typed checkpoint failure. `Display` is one line and stable enough for
/// the CLI to show verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file could not be read or written, even after retries.
    Io {
        /// Checkpoint path.
        path: PathBuf,
        /// Last OS error, annotated with the attempt count.
        message: String,
    },
    /// The file (and its backup, if any) is not a valid checkpoint.
    Parse {
        /// Checkpoint path.
        path: PathBuf,
        /// Parser diagnostic for the primary file.
        message: String,
    },
    /// The checkpoint belongs to a different `(graph, configuration)`.
    Incompatible {
        /// The first differing configuration field (`seed`, `strategies`,
        /// …), or `graph` when the configs match and the graph itself
        /// differs, or `fingerprint` for legacy files without a stored
        /// config.
        field: String,
        /// What this run expects for that field.
        expected: String,
        /// What the checkpoint holds.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "cannot access checkpoint {}: {message}", path.display())
            }
            CheckpointError::Parse { path, message } => write!(
                f,
                "cannot parse checkpoint {}: {message} (no usable backup)",
                path.display()
            ),
            CheckpointError::Incompatible {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint incompatible: {field} (checkpoint has {found}, this run has {expected})"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A successfully loaded checkpoint, flagging whether the torn-write
/// recovery path had to fall back to the `.bak` generation.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadedCheckpoint {
    /// The checkpoint contents.
    pub checkpoint: Checkpoint,
    /// `true` when the primary file was missing or unparseable and the
    /// backup supplied the state (the previous generation: recent cells
    /// may be recomputed, never corrupted).
    pub recovered_from_backup: bool,
    /// `true` when the loaded document predates content checksums (no
    /// `checksum` field): it still loads, but silent corruption cannot be
    /// detected — callers should warn.
    pub checksum_missing: bool,
}

/// One finished `(strategy, replica)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Canonical strategy name (see [`crate::strategy::Strategy::name`]).
    pub strategy: String,
    /// Replica index within the strategy.
    pub replica: usize,
    /// `true` when the first attempt panicked and this curve comes from the
    /// resample pass.
    pub resampled: bool,
    /// The completed attack curve.
    pub curve: AttackCurve,
}

/// One worker failure (a caught panic), kept for the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Canonical strategy name of the failing cell.
    pub strategy: String,
    /// Replica index of the failing cell.
    pub replica: usize,
    /// 0 for the first attempt, 1 for the resample.
    pub attempt: usize,
    /// The panic message.
    pub message: String,
}

/// The persisted state of a sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Graph+config fingerprint the cells belong to.
    pub fingerprint: u64,
    /// Human-readable configuration string the fingerprint was computed
    /// over (`None` in files written before it was recorded). Lets a
    /// mismatch name the differing field instead of just the hash.
    pub config: Option<String>,
    /// Completed cells, in completion order.
    pub cells: Vec<CellRecord>,
    /// Caught worker panics, in occurrence order.
    pub failures: Vec<FailureRecord>,
}

/// FNV-1a 64 fingerprint binding a checkpoint to one `(graph, config)`
/// pair: node count, edge count, every edge, and the config description
/// all feed the hash, so resuming against a different graph or sweep shape
/// is rejected instead of silently mixing results.
pub fn fingerprint(g: &Csr, config: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    };
    eat(g.node_count() as u64);
    eat(g.edge_count() as u64);
    for (u, v, w) in g.edges() {
        eat(u as u64);
        eat(v as u64);
        eat(w);
    }
    for byte in config.as_bytes() {
        h = (h ^ *byte as u64).wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 64 over raw bytes — the content checksum of persisted documents
/// (checkpoints, run-store artifacts).
pub fn fnv64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for byte in bytes {
        h = (h ^ *byte as u64).wrapping_mul(PRIME);
    }
    h
}

impl Checkpoint {
    /// A fresh, empty checkpoint for `fingerprint`.
    pub fn new(fingerprint: u64) -> Self {
        Checkpoint {
            fingerprint,
            config: None,
            cells: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// A fresh checkpoint that also records the config string the
    /// fingerprint was computed over (enables field-level mismatch
    /// diagnosis on resume).
    pub fn with_config(fingerprint: u64, config: String) -> Self {
        Checkpoint {
            config: Some(config),
            ..Checkpoint::new(fingerprint)
        }
    }

    /// Explains why this checkpoint cannot serve a run whose fingerprint is
    /// `expected_fingerprint` over `expected_config` — or `None` when it
    /// can. Names the first differing configuration field when the stored
    /// config string allows it.
    pub fn diagnose_incompatibility(
        &self,
        expected_fingerprint: u64,
        expected_config: &str,
    ) -> Option<CheckpointError> {
        if self.fingerprint == expected_fingerprint {
            return None;
        }
        if let Some(stored) = &self.config {
            if stored == expected_config {
                // Same sweep shape, different graph bytes.
                return Some(CheckpointError::Incompatible {
                    field: "graph".to_string(),
                    expected: format!("fingerprint {expected_fingerprint:016x}"),
                    found: format!("fingerprint {:016x}", self.fingerprint),
                });
            }
            let stored_toks: Vec<&str> = stored.split_whitespace().collect();
            let expect_toks: Vec<&str> = expected_config.split_whitespace().collect();
            for i in 0..stored_toks.len().max(expect_toks.len()) {
                let s = stored_toks.get(i).copied().unwrap_or("<missing>");
                let e = expect_toks.get(i).copied().unwrap_or("<missing>");
                if s != e {
                    let key_src = if e == "<missing>" { s } else { e };
                    let field = key_src
                        .split('=')
                        .next()
                        .filter(|k| !k.is_empty())
                        .unwrap_or("config")
                        .to_string();
                    return Some(CheckpointError::Incompatible {
                        field,
                        expected: e.to_string(),
                        found: s.to_string(),
                    });
                }
            }
        }
        // Legacy file without a config string (or an undetectable diff):
        // all we can report is the hash.
        Some(CheckpointError::Incompatible {
            field: "fingerprint".to_string(),
            expected: format!("{expected_fingerprint:016x}"),
            found: format!("{:016x}", self.fingerprint),
        })
    }

    /// `true` if a cell for `(strategy, replica)` is already recorded.
    pub fn has_cell(&self, strategy: &str, replica: usize) -> bool {
        self.cells
            .iter()
            .any(|c| c.strategy == strategy && c.replica == replica)
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": {CHECKPOINT_VERSION},");
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        if let Some(config) = &self.config {
            let _ = writeln!(out, "  \"config\": {},", json_string(config));
        }
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"strategy\": {}, \"replica\": {}, \"resampled\": {}, \
                 \"nodes\": {}, \"edges\": {}, \"critical_fraction\": {:?}, \"points\": [",
                json_string(&cell.strategy),
                cell.replica,
                cell.resampled,
                cell.curve.nodes,
                cell.curve.edges,
                cell.curve.critical_fraction,
            );
            for (j, p) in cell.curve.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "[{}, {}, {}, {:?}]",
                    p.removed, p.giant, p.edges, p.mean_component
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"strategy\": {}, \"replica\": {}, \"attempt\": {}, \"message\": {}}}",
                json_string(&f.strategy),
                f.replica,
                f.attempt,
                json_string(&f.message),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The content checksum of this checkpoint: FNV-1a 64 over the
    /// canonical (checksum-less) serialization. Because the JSON round trip
    /// is lossless and idempotent, any bit flip that survives parsing
    /// changes the re-serialization and therefore the checksum.
    pub fn content_checksum(&self) -> u64 {
        fnv64(self.to_json().as_bytes())
    }

    /// [`Checkpoint::to_json`] plus an embedded `checksum` field covering
    /// the canonical document — what [`Checkpoint::save`] writes to disk.
    pub fn to_json_checksummed(&self) -> String {
        let body = self.to_json();
        let sum = fnv64(body.as_bytes());
        body.replacen("{\n", &format!("{{\n  \"checksum\": \"{sum:016x}\",\n"), 1)
    }

    /// Parses a document produced by [`Checkpoint::to_json`] or
    /// [`Checkpoint::to_json_checksummed`]. Rejects other versions,
    /// malformed input, and checksum mismatches with a one-line error.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        Checkpoint::parse_flagged(text).map(|(ck, _)| ck)
    }

    /// [`Checkpoint::parse`] that also reports whether the document carried
    /// a content checksum (`false` = legacy checksum-less file; it loads,
    /// but silent corruption cannot be detected).
    pub fn parse_flagged(text: &str) -> Result<(Checkpoint, bool), String> {
        let root = JsonValue::parse(text)?;
        let version = root.field("version")?.as_u64()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} not supported (expected {CHECKPOINT_VERSION})"
            ));
        }
        let fingerprint = u64::from_str_radix(root.field("fingerprint")?.as_str()?, 16)
            .map_err(|e| format!("bad checkpoint fingerprint: {e}"))?;
        // Optional (absent in files written before it existed).
        let config = match root.field("config") {
            Ok(v) => Some(v.as_str()?.to_string()),
            Err(_) => None,
        };
        let mut cells = Vec::new();
        for cell in root.field("cells")?.as_array()? {
            let points = cell
                .field("points")?
                .as_array()?
                .iter()
                .map(|p| {
                    let q = p.as_array()?;
                    if q.len() != 4 {
                        return Err("curve point must have 4 entries".to_string());
                    }
                    Ok(CurvePoint {
                        removed: q[0].as_u64()? as usize,
                        giant: q[1].as_u64()? as usize,
                        edges: q[2].as_u64()? as usize,
                        mean_component: q[3].as_f64()?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            cells.push(CellRecord {
                strategy: cell.field("strategy")?.as_str()?.to_string(),
                replica: cell.field("replica")?.as_u64()? as usize,
                resampled: cell.field("resampled")?.as_bool()?,
                curve: AttackCurve {
                    nodes: cell.field("nodes")?.as_u64()? as usize,
                    edges: cell.field("edges")?.as_u64()? as usize,
                    points,
                    critical_fraction: cell.field("critical_fraction")?.as_f64()?,
                },
            });
        }
        let mut failures = Vec::new();
        for f in root.field("failures")?.as_array()? {
            failures.push(FailureRecord {
                strategy: f.field("strategy")?.as_str()?.to_string(),
                replica: f.field("replica")?.as_u64()? as usize,
                attempt: f.field("attempt")?.as_u64()? as usize,
                message: f.field("message")?.as_str()?.to_string(),
            });
        }
        let checkpoint = Checkpoint {
            fingerprint,
            config,
            cells,
            failures,
        };
        // Optional (absent in files written before checksums existed).
        match root.field("checksum") {
            Ok(v) => {
                let stored = u64::from_str_radix(v.as_str()?, 16)
                    .map_err(|e| format!("bad checkpoint checksum: {e}"))?;
                let actual = checkpoint.content_checksum();
                if stored != actual {
                    return Err(format!(
                        "checkpoint checksum mismatch: stored {stored:016x}, \
                         content hashes to {actual:016x} (silent corruption)"
                    ));
                }
                Ok((checkpoint, true))
            }
            Err(_) => Ok((checkpoint, false)),
        }
    }

    /// Atomically writes the checkpoint to `path` (via `<path>.tmp` +
    /// rename, rotating the previous generation to `<path>.bak`), so a
    /// crash mid-write never corrupts an existing file. Convenience
    /// wrapper over [`Checkpoint::save_with_retry`] with the default
    /// [`RetryPolicy`].
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with_retry(path, &RetryPolicy::default())
            .map_err(io::Error::other)
    }

    /// Writes the checkpoint atomically, retrying transient failures under
    /// `retry`. The write sequence is: serialize to `<path>.tmp`, rotate
    /// any existing `<path>` to `<path>.bak`, rename the tmp into place —
    /// at every instant either the new file, the old file, or the backup
    /// is complete on disk.
    pub fn save_with_retry(&self, path: &Path, retry: &RetryPolicy) -> Result<(), CheckpointError> {
        // Each attempt is panic-fenced by the shared retry loop: an
        // injected (or real) panic inside one write attempt is just a
        // failed attempt to retry.
        retry
            .run(|attempt| self.save_once(path, attempt))
            .map_err(|exhausted| CheckpointError::Io {
                path: path.to_path_buf(),
                message: exhausted.to_string(),
            })
    }

    /// One write attempt. `attempt` is the retry index — the scope key of
    /// the `checkpoint.write` failpoint, so a chaos plan can fail exactly
    /// the first attempt and watch the retry recover.
    fn save_once(&self, path: &Path, attempt: u64) -> Result<(), String> {
        inet_fault::check("checkpoint.write", attempt).map_err(|e| e.to_string())?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json_checksummed())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        if path.exists() {
            let bak = path.with_extension("bak");
            std::fs::rename(path, &bak)
                .map_err(|e| format!("rotate backup {}: {e}", bak.display()))?;
        }
        std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))
    }

    /// Loads a checkpoint from `path`. Returns `Ok(None)` when the file
    /// does not exist (a fresh run), `Err` on unreadable or malformed
    /// content. Convenience wrapper over [`Checkpoint::load_recovering`]
    /// that drops the backup-recovery flag.
    pub fn load(path: &Path) -> Result<Option<Checkpoint>, String> {
        Checkpoint::load_recovering(path, &RetryPolicy::default())
            .map(|opt| opt.map(|loaded| loaded.checkpoint))
            .map_err(|e| e.to_string())
    }

    /// Loads a checkpoint, retrying transient IO failures under `retry`
    /// and falling back to the `<path>.bak` generation when the primary
    /// file is torn (truncated mid-write) or missing while a backup
    /// exists. Returns `Ok(None)` only when neither file exists.
    pub fn load_recovering(
        path: &Path,
        retry: &RetryPolicy,
    ) -> Result<Option<LoadedCheckpoint>, CheckpointError> {
        // The retry loop retries *transient* outcomes (an `Err` from the
        // closure: injected faults, fenced panics, IO errors other than
        // NotFound); everything else is terminal and returned as the
        // closure's success value, ending the loop immediately.
        type Terminal = Result<Option<LoadedCheckpoint>, CheckpointError>;
        let outcome: Result<Terminal, RetryExhausted> = retry.run(|attempt| {
            inet_fault::check("checkpoint.read", attempt).map_err(|e| e.to_string())?;
            match std::fs::read_to_string(path) {
                Ok(text) => {
                    // Parse failures — including checksum mismatches from
                    // silent corruption — are deterministic; retrying the
                    // read cannot help, go straight to the backup.
                    Ok(match Checkpoint::parse_flagged(&text) {
                        Ok((checkpoint, has_checksum)) => Ok(Some(LoadedCheckpoint {
                            checkpoint,
                            recovered_from_backup: false,
                            checksum_missing: !has_checksum,
                        })),
                        Err(message) => match Self::parse_backup(path) {
                            Some((checkpoint, has_checksum)) => Ok(Some(LoadedCheckpoint {
                                checkpoint,
                                recovered_from_backup: true,
                                checksum_missing: !has_checksum,
                            })),
                            None => Err(CheckpointError::Parse {
                                path: path.to_path_buf(),
                                message,
                            }),
                        },
                    })
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A crash between "rotate to .bak" and "rename tmp into
                    // place" leaves only the backup; recover it.
                    Ok(Ok(Self::parse_backup(path).map(
                        |(checkpoint, has_checksum)| LoadedCheckpoint {
                            checkpoint,
                            recovered_from_backup: true,
                            checksum_missing: !has_checksum,
                        },
                    )))
                }
                Err(e) => Err(e.to_string()),
            }
        });
        outcome.map_err(|exhausted| CheckpointError::Io {
            path: path.to_path_buf(),
            message: exhausted.to_string(),
        })?
    }

    /// The `<path>.bak` generation, if present and parseable, with its
    /// has-checksum flag.
    fn parse_backup(path: &Path) -> Option<(Checkpoint, bool)> {
        let text = std::fs::read_to_string(path.with_extension("bak")).ok()?;
        Checkpoint::parse_flagged(&text).ok()
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough of the grammar for the checkpoint
/// schema (and for rejecting malformed files with a useful message).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn field(&self, name: &str) -> Result<&JsonValue, String> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{name}'")),
            _ => Err(format!("expected object while reading '{name}'")),
        }
    }

    fn as_array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err("expected array".to_string()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err("expected string".to_string()),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err("expected boolean".to_string()),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            _ => Err("expected number".to_string()),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
            Ok(x as u64)
        } else {
            Err(format!("expected non-negative integer, got {x}"))
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|x| x.is_finite())
                .map(JsonValue::Number)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected content at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "checkpoint is not UTF-8".to_string())?
        .char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let mut ck = Checkpoint::new(0xdead_beef_0bad_f00d);
        ck.cells.push(CellRecord {
            strategy: "degree".to_string(),
            replica: 0,
            resampled: false,
            curve: AttackCurve {
                nodes: 5,
                edges: 4,
                points: vec![
                    CurvePoint {
                        removed: 0,
                        giant: 5,
                        edges: 4,
                        mean_component: 0.0,
                    },
                    CurvePoint {
                        removed: 5,
                        giant: 0,
                        edges: 0,
                        mean_component: 1.0 / 3.0,
                    },
                ],
                critical_fraction: 0.4,
            },
        });
        ck.cells.push(CellRecord {
            strategy: "random".to_string(),
            replica: 2,
            resampled: true,
            curve: AttackCurve {
                nodes: 5,
                edges: 4,
                points: vec![],
                critical_fraction: 0.0,
            },
        });
        ck.failures.push(FailureRecord {
            strategy: "random".to_string(),
            replica: 2,
            attempt: 0,
            message: "injected \"panic\"\nwith newline \\ and slash".to_string(),
        });
        ck
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let ck = sample_checkpoint();
        let parsed = Checkpoint::parse(&ck.to_json()).unwrap();
        assert_eq!(parsed, ck);
        // Idempotent: a second cycle produces identical text.
        assert_eq!(parsed.to_json(), ck.to_json());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint::new(7);
        assert_eq!(Checkpoint::parse(&ck.to_json()).unwrap(), ck);
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let wrong = sample_checkpoint().to_json().replace(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            "\"version\": 99",
        );
        assert!(Checkpoint::parse(&wrong).unwrap_err().contains("version"));
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("{\"version\": 1").is_err());
        assert!(Checkpoint::parse("not json at all").is_err());
        assert!(Checkpoint::parse("{} trailing").is_err());
    }

    #[test]
    fn has_cell_matches_strategy_and_replica() {
        let ck = sample_checkpoint();
        assert!(ck.has_cell("degree", 0));
        assert!(ck.has_cell("random", 2));
        assert!(!ck.has_cell("degree", 1));
        assert!(!ck.has_cell("kcore", 0));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Checkpoint::load(&path).unwrap(), None);
        let ck = sample_checkpoint();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(ck));
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_graphs_and_configs() {
        let a = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let b = Csr::from_edges(3, &[(0, 1), (0, 2)]);
        assert_ne!(fingerprint(&a, "cfg"), fingerprint(&b, "cfg"));
        assert_ne!(fingerprint(&a, "cfg"), fingerprint(&a, "cfg2"));
        assert_eq!(fingerprint(&a, "cfg"), fingerprint(&a, "cfg"));
    }

    #[test]
    fn config_field_round_trips_and_stays_optional() {
        let mut ck = sample_checkpoint();
        ck.config = Some("v1 strategies=[random] replicas=2 seed=7".to_string());
        let text = ck.to_json();
        assert!(text.contains("\"config\""));
        assert_eq!(Checkpoint::parse(&text).unwrap(), ck);
        // Legacy documents without the field still load, with config None.
        let legacy = sample_checkpoint();
        assert!(!legacy.to_json().contains("\"config\""));
        assert_eq!(Checkpoint::parse(&legacy.to_json()).unwrap().config, None);
    }

    #[test]
    fn checksummed_document_round_trips_and_flags_legacy() {
        let ck = sample_checkpoint();
        let text = ck.to_json_checksummed();
        assert!(text.contains("\"checksum\""));
        let (parsed, had) = Checkpoint::parse_flagged(&text).unwrap();
        assert!(had, "checksummed document must be flagged as such");
        assert_eq!(parsed, ck);
        // Legacy checksum-less text still parses, flagged legacy.
        let (parsed, had) = Checkpoint::parse_flagged(&ck.to_json()).unwrap();
        assert!(!had);
        assert_eq!(parsed, ck);
    }

    #[test]
    fn silent_corruption_fails_the_checksum() {
        let ck = sample_checkpoint();
        // Flip one digit of critical_fraction 0.4 → 0.9: still valid JSON,
        // still a parseable checkpoint — only the checksum can catch it.
        let corrupt = ck
            .to_json_checksummed()
            .replace("\"critical_fraction\": 0.4", "\"critical_fraction\": 0.9");
        let err = Checkpoint::parse(&corrupt).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        // The same corruption in a legacy file goes undetected (the
        // documented limitation the checksum exists to close).
        let legacy = ck
            .to_json()
            .replace("\"critical_fraction\": 0.4", "\"critical_fraction\": 0.9");
        assert!(Checkpoint::parse(&legacy).is_ok());
    }

    #[test]
    fn corrupted_primary_recovers_from_backup_via_checksum() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("bak"));

        let gen1 = sample_checkpoint();
        gen1.save(&path).unwrap();
        let mut gen2 = gen1.clone();
        gen2.failures.clear();
        gen2.save(&path).unwrap();

        // Silently corrupt the primary: valid JSON, wrong numbers.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(
            &path,
            text.replace("\"critical_fraction\": 0.4", "\"critical_fraction\": 0.9"),
        )
        .unwrap();

        let loaded = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay())
            .unwrap()
            .expect("backup must recover");
        assert!(loaded.recovered_from_backup);
        assert!(!loaded.checksum_missing);
        assert_eq!(loaded.checkpoint, gen1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("bak"));
    }

    #[test]
    fn legacy_checksum_less_file_loads_with_flag() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let ck = sample_checkpoint();
        std::fs::write(&path, ck.to_json()).unwrap();
        let loaded = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay())
            .unwrap()
            .expect("legacy file must load");
        assert!(loaded.checksum_missing, "legacy file must be flagged");
        assert_eq!(loaded.checkpoint, ck);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_recovers_previous_generation_from_backup() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("bak"));

        let gen1 = sample_checkpoint();
        gen1.save(&path).unwrap();
        let mut gen2 = gen1.clone();
        gen2.cells.push(CellRecord {
            strategy: "kcore".to_string(),
            replica: 0,
            resampled: false,
            curve: AttackCurve {
                nodes: 5,
                edges: 4,
                points: vec![],
                critical_fraction: 0.2,
            },
        });
        gen2.save(&path).unwrap();
        assert!(path.with_extension("bak").exists(), "save must rotate .bak");

        // Tear the primary file mid-write: keep only the first half.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        let loaded = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay())
            .unwrap()
            .expect("backup must recover");
        assert!(loaded.recovered_from_backup);
        assert_eq!(loaded.checkpoint, gen1, "backup is the previous generation");

        // With the backup also gone, the torn file is a structured error.
        std::fs::remove_file(path.with_extension("bak")).unwrap();
        let err = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay()).unwrap_err();
        assert!(matches!(err, CheckpointError::Parse { .. }), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_primary_with_backup_recovers() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-missing");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        let ck = sample_checkpoint();
        ck.save(&path.with_extension("bak")).unwrap();
        // Crash window: primary already rotated away, replacement not yet
        // renamed into place.
        let loaded = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay())
            .unwrap()
            .expect("backup must recover");
        assert!(loaded.recovered_from_backup);
        assert_eq!(loaded.checkpoint, ck);
        std::fs::remove_file(path.with_extension("bak")).unwrap();
        // Neither file: a fresh run.
        assert_eq!(
            Checkpoint::load_recovering(&path, &RetryPolicy::no_delay()).unwrap(),
            None
        );
    }

    #[test]
    fn incompatibility_names_the_differing_field() {
        let mk = |config: &str| Checkpoint::with_config(1, config.to_string());
        let current = "v1 strategies=[random,degree] replicas=3 seed=42 record=1 bc_sources=8";

        // Matching fingerprint: compatible regardless of anything else.
        assert_eq!(mk("whatever").diagnose_incompatibility(1, current), None);

        let stored = "v1 strategies=[random,degree] replicas=3 seed=7 record=1 bc_sources=8";
        match mk(stored).diagnose_incompatibility(2, current) {
            Some(CheckpointError::Incompatible {
                field,
                expected,
                found,
            }) => {
                assert_eq!(field, "seed");
                assert_eq!(expected, "seed=42");
                assert_eq!(found, "seed=7");
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
        let e = mk(stored).diagnose_incompatibility(2, current).unwrap();
        assert!(
            e.to_string().contains("checkpoint incompatible: seed"),
            "{e}"
        );

        // Same config string, different fingerprint → the graph differs.
        match mk(current).diagnose_incompatibility(2, current) {
            Some(CheckpointError::Incompatible { field, .. }) => assert_eq!(field, "graph"),
            other => panic!("expected Incompatible, got {other:?}"),
        }

        // Legacy checkpoint without a stored config → hash-only report.
        match Checkpoint::new(1).diagnose_incompatibility(2, current) {
            Some(CheckpointError::Incompatible { field, .. }) => assert_eq!(field, "fingerprint"),
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    #[test]
    fn retry_delays_are_deterministic_and_capped() {
        let policy = RetryPolicy::default();
        for attempt in 0..8 {
            let a = policy.delay_ms(attempt);
            let b = policy.delay_ms(attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(
                a <= policy.max_delay_ms + policy.max_delay_ms / 4,
                "attempt {attempt}: delay {a} above cap"
            );
        }
        // Backoff grows until the cap bites.
        assert!(policy.delay_ms(1) > policy.delay_ms(0));
        assert_eq!(RetryPolicy::no_delay().delay_ms(3), 0);
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn injected_write_fault_is_retried_and_recovered() {
        use inet_fault::{FaultAction, FaultPlan};
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-fault");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        let ck = sample_checkpoint();
        {
            // Fail exactly the first write attempt; the retry must land.
            let _guard = inet_fault::install(FaultPlan::single(
                "checkpoint.write",
                Some(0),
                FaultAction::Error,
            ));
            ck.save_with_retry(&path, &RetryPolicy::no_delay()).unwrap();
        }
        {
            // Same for the first read attempt.
            let _guard = inet_fault::install(FaultPlan::single(
                "checkpoint.read",
                Some(0),
                FaultAction::Error,
            ));
            let loaded = Checkpoint::load_recovering(&path, &RetryPolicy::no_delay())
                .unwrap()
                .expect("file exists");
            assert!(!loaded.recovered_from_backup);
            assert_eq!(loaded.checkpoint, ck);
        }
        let _ = std::fs::remove_file(&path);
    }
}
