//! Sweep checkpoints: crash-safe progress files for long attack sweeps.
//!
//! A sweep over `strategies × replicas` cells writes one JSON state file,
//! atomically (write to `<path>.tmp`, then rename), after every completed
//! cell. Re-running with `--resume <path>` loads the file, verifies that it
//! belongs to the same `(graph, configuration)` via a fingerprint, and
//! skips every cell already present — an interrupted run finishes instead
//! of restarting.
//!
//! The file format is a small, versioned JSON document:
//!
//! ```json
//! {
//!   "version": 1,
//!   "fingerprint": "9a3c…",          // FNV-1a 64 over graph + config, hex
//!   "cells": [
//!     {"strategy": "degree", "replica": 0, "resampled": false,
//!      "nodes": 500, "edges": 1234, "critical_fraction": 0.062,
//!      "points": [[0, 500, 1234, 0.0], …]}   // [removed, giant, edges, ⟨s⟩]
//!   ],
//!   "failures": [
//!     {"strategy": "random", "replica": 3, "attempt": 0, "message": "…"}
//!   ]
//! }
//! ```
//!
//! Serialization is hand-rolled (the workspace is offline; no JSON
//! dependency exists) and uses `{:?}` float formatting, which is Rust's
//! shortest round-trip form, so a load-save cycle is lossless.

use crate::percolation::{AttackCurve, CurvePoint};
use inet_graph::Csr;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Format version written by this build; loads of other versions fail.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One finished `(strategy, replica)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Canonical strategy name (see [`crate::strategy::Strategy::name`]).
    pub strategy: String,
    /// Replica index within the strategy.
    pub replica: usize,
    /// `true` when the first attempt panicked and this curve comes from the
    /// resample pass.
    pub resampled: bool,
    /// The completed attack curve.
    pub curve: AttackCurve,
}

/// One worker failure (a caught panic), kept for the run report.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Canonical strategy name of the failing cell.
    pub strategy: String,
    /// Replica index of the failing cell.
    pub replica: usize,
    /// 0 for the first attempt, 1 for the resample.
    pub attempt: usize,
    /// The panic message.
    pub message: String,
}

/// The persisted state of a sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Graph+config fingerprint the cells belong to.
    pub fingerprint: u64,
    /// Completed cells, in completion order.
    pub cells: Vec<CellRecord>,
    /// Caught worker panics, in occurrence order.
    pub failures: Vec<FailureRecord>,
}

/// FNV-1a 64 fingerprint binding a checkpoint to one `(graph, config)`
/// pair: node count, edge count, every edge, and the config description
/// all feed the hash, so resuming against a different graph or sweep shape
/// is rejected instead of silently mixing results.
pub fn fingerprint(g: &Csr, config: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |word: u64| {
        for byte in word.to_le_bytes() {
            h = (h ^ byte as u64).wrapping_mul(PRIME);
        }
    };
    eat(g.node_count() as u64);
    eat(g.edge_count() as u64);
    for (u, v, w) in g.edges() {
        eat(u as u64);
        eat(v as u64);
        eat(w);
    }
    for byte in config.as_bytes() {
        h = (h ^ *byte as u64).wrapping_mul(PRIME);
    }
    h
}

impl Checkpoint {
    /// A fresh, empty checkpoint for `fingerprint`.
    pub fn new(fingerprint: u64) -> Self {
        Checkpoint {
            fingerprint,
            cells: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// `true` if a cell for `(strategy, replica)` is already recorded.
    pub fn has_cell(&self, strategy: &str, replica: usize) -> bool {
        self.cells
            .iter()
            .any(|c| c.strategy == strategy && c.replica == replica)
    }

    /// Serializes to the versioned JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": {CHECKPOINT_VERSION},");
        let _ = writeln!(out, "  \"fingerprint\": \"{:016x}\",", self.fingerprint);
        out.push_str("  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"strategy\": {}, \"replica\": {}, \"resampled\": {}, \
                 \"nodes\": {}, \"edges\": {}, \"critical_fraction\": {:?}, \"points\": [",
                json_string(&cell.strategy),
                cell.replica,
                cell.resampled,
                cell.curve.nodes,
                cell.curve.edges,
                cell.curve.critical_fraction,
            );
            for (j, p) in cell.curve.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(
                    out,
                    "[{}, {}, {}, {:?}]",
                    p.removed, p.giant, p.edges, p.mean_component
                );
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"failures\": [");
        for (i, f) in self.failures.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"strategy\": {}, \"replica\": {}, \"attempt\": {}, \"message\": {}}}",
                json_string(&f.strategy),
                f.replica,
                f.attempt,
                json_string(&f.message),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a document produced by [`Checkpoint::to_json`]. Rejects other
    /// versions and malformed input with a one-line error.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let root = JsonValue::parse(text)?;
        let version = root.field("version")?.as_u64()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "checkpoint version {version} not supported (expected {CHECKPOINT_VERSION})"
            ));
        }
        let fingerprint = u64::from_str_radix(root.field("fingerprint")?.as_str()?, 16)
            .map_err(|e| format!("bad checkpoint fingerprint: {e}"))?;
        let mut cells = Vec::new();
        for cell in root.field("cells")?.as_array()? {
            let points = cell
                .field("points")?
                .as_array()?
                .iter()
                .map(|p| {
                    let q = p.as_array()?;
                    if q.len() != 4 {
                        return Err("curve point must have 4 entries".to_string());
                    }
                    Ok(CurvePoint {
                        removed: q[0].as_u64()? as usize,
                        giant: q[1].as_u64()? as usize,
                        edges: q[2].as_u64()? as usize,
                        mean_component: q[3].as_f64()?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            cells.push(CellRecord {
                strategy: cell.field("strategy")?.as_str()?.to_string(),
                replica: cell.field("replica")?.as_u64()? as usize,
                resampled: cell.field("resampled")?.as_bool()?,
                curve: AttackCurve {
                    nodes: cell.field("nodes")?.as_u64()? as usize,
                    edges: cell.field("edges")?.as_u64()? as usize,
                    points,
                    critical_fraction: cell.field("critical_fraction")?.as_f64()?,
                },
            });
        }
        let mut failures = Vec::new();
        for f in root.field("failures")?.as_array()? {
            failures.push(FailureRecord {
                strategy: f.field("strategy")?.as_str()?.to_string(),
                replica: f.field("replica")?.as_u64()? as usize,
                attempt: f.field("attempt")?.as_u64()? as usize,
                message: f.field("message")?.as_str()?.to_string(),
            });
        }
        Ok(Checkpoint {
            fingerprint,
            cells,
            failures,
        })
    }

    /// Atomically writes the checkpoint to `path` (via `<path>.tmp` +
    /// rename), so a crash mid-write never corrupts an existing file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint from `path`. Returns `Ok(None)` when the file
    /// does not exist (a fresh run), `Err` on unreadable or malformed
    /// content.
    pub fn load(path: &Path) -> Result<Option<Checkpoint>, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read checkpoint {}: {e}", path.display())),
        };
        Checkpoint::parse(&text)
            .map(Some)
            .map_err(|e| format!("cannot parse checkpoint {}: {e}", path.display()))
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value — just enough of the grammar for the checkpoint
/// schema (and for rejecting malformed files with a useful message).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    fn field(&self, name: &str) -> Result<&JsonValue, String> {
        match self {
            JsonValue::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{name}'")),
            _ => Err(format!("expected object while reading '{name}'")),
        }
    }

    fn as_array(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(items) => Ok(items),
            _ => Err("expected array".to_string()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err("expected string".to_string()),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            _ => Err("expected boolean".to_string()),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            JsonValue::Number(x) => Ok(*x),
            _ => Err("expected number".to_string()),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 {
            Ok(x as u64)
        } else {
            Err(format!("expected non-negative integer, got {x}"))
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(JsonValue::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(JsonValue::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(JsonValue::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|x| x.is_finite())
                .map(JsonValue::Number)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }
        _ => Err(format!("unexpected content at byte {pos}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chars = std::str::from_utf8(&bytes[*pos..])
        .map_err(|_| "checkpoint is not UTF-8".to_string())?
        .char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *pos += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint() -> Checkpoint {
        let mut ck = Checkpoint::new(0xdead_beef_0bad_f00d);
        ck.cells.push(CellRecord {
            strategy: "degree".to_string(),
            replica: 0,
            resampled: false,
            curve: AttackCurve {
                nodes: 5,
                edges: 4,
                points: vec![
                    CurvePoint {
                        removed: 0,
                        giant: 5,
                        edges: 4,
                        mean_component: 0.0,
                    },
                    CurvePoint {
                        removed: 5,
                        giant: 0,
                        edges: 0,
                        mean_component: 1.0 / 3.0,
                    },
                ],
                critical_fraction: 0.4,
            },
        });
        ck.cells.push(CellRecord {
            strategy: "random".to_string(),
            replica: 2,
            resampled: true,
            curve: AttackCurve {
                nodes: 5,
                edges: 4,
                points: vec![],
                critical_fraction: 0.0,
            },
        });
        ck.failures.push(FailureRecord {
            strategy: "random".to_string(),
            replica: 2,
            attempt: 0,
            message: "injected \"panic\"\nwith newline \\ and slash".to_string(),
        });
        ck
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let ck = sample_checkpoint();
        let parsed = Checkpoint::parse(&ck.to_json()).unwrap();
        assert_eq!(parsed, ck);
        // Idempotent: a second cycle produces identical text.
        assert_eq!(parsed.to_json(), ck.to_json());
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = Checkpoint::new(7);
        assert_eq!(Checkpoint::parse(&ck.to_json()).unwrap(), ck);
    }

    #[test]
    fn rejects_wrong_version_and_garbage() {
        let wrong = sample_checkpoint().to_json().replace(
            &format!("\"version\": {CHECKPOINT_VERSION}"),
            "\"version\": 99",
        );
        assert!(Checkpoint::parse(&wrong).unwrap_err().contains("version"));
        assert!(Checkpoint::parse("").is_err());
        assert!(Checkpoint::parse("{\"version\": 1").is_err());
        assert!(Checkpoint::parse("not json at all").is_err());
        assert!(Checkpoint::parse("{} trailing").is_err());
    }

    #[test]
    fn has_cell_matches_strategy_and_replica() {
        let ck = sample_checkpoint();
        assert!(ck.has_cell("degree", 0));
        assert!(ck.has_cell("random", 2));
        assert!(!ck.has_cell("degree", 1));
        assert!(!ck.has_cell("kcore", 0));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join("inet-resilience-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        let _ = std::fs::remove_file(&path);
        assert_eq!(Checkpoint::load(&path).unwrap(), None);
        let ck = sample_checkpoint();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), Some(ck));
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_separates_graphs_and_configs() {
        let a = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let b = Csr::from_edges(3, &[(0, 1), (0, 2)]);
        assert_ne!(fingerprint(&a, "cfg"), fingerprint(&b, "cfg"));
        assert_ne!(fingerprint(&a, "cfg"), fingerprint(&a, "cfg2"));
        assert_eq!(fingerprint(&a, "cfg"), fingerprint(&a, "cfg"));
    }
}
