//! Empirical (complementary) cumulative distribution functions.
//!
//! The evaluation plots of Internet-topology papers are almost always CCDFs
//! (`P(X ≥ x)`), because cumulation removes binning noise from heavy tails.
//! A power law `p(x) ~ x^(-γ)` has CCDF `~ x^(-(γ-1))`.

use serde::{Deserialize, Serialize};

/// Empirical distribution over the distinct values of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ccdf {
    /// Distinct sample values, ascending.
    pub values: Vec<f64>,
    /// `ccdf[i] = P(X >= values[i])` (so `ccdf[0] == 1`).
    pub ccdf: Vec<f64>,
    /// Number of samples the distribution was built from.
    pub n: usize,
}

impl Ccdf {
    /// Evaluates `P(X >= x)` by step interpolation.
    pub fn at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        // First index with value > x; all samples at indices >= that point
        // have value > x... we need P(X >= x): count values v >= x.
        match self
            .values
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => self.ccdf[i],
            Err(i) => {
                if i >= self.values.len() {
                    0.0
                } else {
                    self.ccdf[i]
                }
            }
        }
    }

    /// `(value, P(X >= value))` pairs, ascending in value.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.values.iter().copied().zip(self.ccdf.iter().copied())
    }

    /// Maximum observed value; `None` for an empty distribution.
    pub fn max(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Kolmogorov–Smirnov distance to another empirical CCDF, evaluated on
    /// the union of both supports.
    pub fn ks_distance(&self, other: &Ccdf) -> f64 {
        let mut xs: Vec<f64> = self.values.iter().chain(&other.values).copied().collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        xs.dedup();
        xs.iter()
            .map(|&x| (self.at(x) - other.at(x)).abs())
            .fold(0.0, f64::max)
    }
}

/// Builds the empirical CCDF of a real-valued sample.
///
/// Non-finite entries are ignored. Returns an empty distribution for an
/// empty (or all-non-finite) sample.
pub fn ccdf_f64(samples: &[f64]) -> Ccdf {
    let mut xs: Vec<f64> = samples.iter().copied().filter(|x| x.is_finite()).collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite"));
    let n = xs.len();
    let mut values = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &x in &xs {
        if values.last().map_or(true, |&last: &f64| x != last) {
            values.push(x);
            counts.push(1);
        } else {
            *counts.last_mut().expect("non-empty") += 1;
        }
    }
    // ccdf[i] = (number of samples with value >= values[i]) / n
    let mut ccdf = vec![0.0; values.len()];
    let mut tail = 0usize;
    for i in (0..values.len()).rev() {
        tail += counts[i];
        ccdf[i] = tail as f64 / n as f64;
    }
    Ccdf { values, ccdf, n }
}

/// Builds the empirical CCDF of an integer-valued sample (degrees, triangle
/// counts, core indices, ...).
pub fn ccdf_u64(samples: &[u64]) -> Ccdf {
    let xs: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
    ccdf_f64(&xs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ccdf() {
        let c = ccdf_u64(&[1, 1, 2, 3]);
        assert_eq!(c.values, vec![1.0, 2.0, 3.0]);
        assert_eq!(c.ccdf, vec![1.0, 0.5, 0.25]);
        assert_eq!(c.n, 4);
    }

    #[test]
    fn at_is_a_right_continuous_step() {
        let c = ccdf_u64(&[1, 2, 2, 5]);
        assert_eq!(c.at(0.0), 1.0);
        assert_eq!(c.at(1.0), 1.0);
        assert_eq!(c.at(1.5), 0.75);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(3.0), 0.25);
        assert_eq!(c.at(5.0), 0.25);
        assert_eq!(c.at(5.1), 0.0);
    }

    #[test]
    fn ccdf_is_monotone_nonincreasing() {
        let c = ccdf_f64(&[0.3, 0.1, 0.9, 0.9, 2.4, -1.0]);
        for w in c.ccdf.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert_eq!(c.ccdf[0], 1.0);
    }

    #[test]
    fn empty_and_nonfinite() {
        let c = ccdf_f64(&[]);
        assert_eq!(c.n, 0);
        assert_eq!(c.at(1.0), 0.0);
        assert_eq!(c.max(), None);
        let c = ccdf_f64(&[f64::NAN, f64::INFINITY]);
        assert_eq!(c.n, 0);
    }

    #[test]
    fn ks_distance_of_identical_is_zero() {
        let a = ccdf_u64(&[1, 2, 3, 4, 5]);
        let b = ccdf_u64(&[1, 2, 3, 4, 5]);
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn ks_distance_detects_shift() {
        let a = ccdf_u64(&[1, 2, 3, 4]);
        let b = ccdf_u64(&[11, 12, 13, 14]);
        assert!((a.ks_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn points_iterates_pairs() {
        let c = ccdf_u64(&[2, 4]);
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts, vec![(2.0, 1.0), (4.0, 0.5)]);
        assert_eq!(c.max(), Some(4.0));
    }
}
