//! Scalar distributions built directly on `rand`.
//!
//! The workspace deliberately avoids `rand_distr`; the handful of
//! distributions needed (exponential waiting times, log-normal measurement
//! noise, Pareto/Zipf heavy tails, standard normal) are implemented here with
//! explicit, testable numerics.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to keep ln(u1) finite.
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std_dev²)`.
///
/// # Panics
///
/// Panics if `std_dev < 0`.
pub fn normal<R: Rng>(mean: f64, std_dev: f64, rng: &mut R) -> f64 {
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    mean + std_dev * standard_normal(rng)
}

/// Samples a log-normal: `exp(N(mu, sigma²))`.
///
/// `mu`/`sigma` are the parameters of the underlying normal (natural-log
/// scale). Used for multiplicative measurement noise on growth traces.
pub fn log_normal<R: Rng>(mu: f64, sigma: f64, rng: &mut R) -> f64 {
    normal(mu, sigma, rng).exp()
}

/// Samples an exponential with the given `rate` (mean `1/rate`).
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub fn exponential<R: Rng>(rate: f64, rng: &mut R) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
    -u.ln() / rate
}

/// Samples a Pareto with scale `xmin` and shape `alpha`
/// (`P(X ≥ x) = (xmin/x)^alpha`).
///
/// # Panics
///
/// Panics if `xmin <= 0` or `alpha <= 0`.
pub fn pareto<R: Rng>(xmin: f64, alpha: f64, rng: &mut R) -> f64 {
    assert!(xmin > 0.0 && alpha > 0.0, "invalid Pareto parameters");
    let u: f64 = 1.0 - rng.gen_range(0.0..1.0);
    xmin * u.powf(-1.0 / alpha)
}

/// A Zipf distribution over `1..=n` with exponent `s`
/// (`P(X = k) ∝ k^(−s)`), sampled by inversion on a precomputed CDF.
///
/// Construction is `O(n)`, each draw `O(log n)`. For unbounded power-law
/// integers use [`crate::powerlaw::sample_discrete`].
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a Zipf sampler over `1..=n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a value in `1..=n`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i + 2,
            Err(i) => i + 1,
        }
        .min(self.cdf.len())
    }

    /// Probability mass at `k` (`1..=n`); 0 outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 || k > self.cdf.len() {
            return 0.0;
        }
        let prev = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        self.cdf[k - 1] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;
    use crate::summary::Summary;

    #[test]
    fn normal_moments() {
        let mut rng = seeded_rng(10);
        let xs: Vec<f64> = (0..50_000).map(|_| normal(3.0, 2.0, &mut rng)).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 3.0).abs() < 0.05, "mean {}", s.mean);
        assert!((s.std_dev() - 2.0).abs() < 0.05, "sd {}", s.std_dev());
    }

    #[test]
    fn log_normal_median() {
        let mut rng = seeded_rng(11);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| log_normal(1.0, 0.5, &mut rng))
            .collect();
        let med = crate::summary::median(&xs).unwrap();
        assert!((med - 1.0f64.exp()).abs() < 0.08, "median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean_and_positivity() {
        let mut rng = seeded_rng(12);
        let xs: Vec<f64> = (0..50_000).map(|_| exponential(4.0, &mut rng)).collect();
        let s = Summary::from_slice(&xs);
        assert!((s.mean - 0.25).abs() < 0.01, "mean {}", s.mean);
        assert!(s.min >= 0.0);
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut rng = seeded_rng(13);
        let xs: Vec<f64> = (0..20_000).map(|_| pareto(2.0, 1.5, &mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 2.0));
        // P(X >= 4) = (2/4)^1.5 ≈ 0.3536.
        let frac = xs.iter().filter(|&&x| x >= 4.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn zipf_frequencies_match_pmf() {
        let z = Zipf::new(5, 1.0);
        let mut rng = seeded_rng(14);
        let mut counts = [0usize; 6];
        let n = 100_000;
        for _ in 0..n {
            let k = z.sample(&mut rng);
            assert!((1..=5).contains(&k));
            counts[k] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let got = count as f64 / n as f64;
            assert!(
                (got - z.pmf(k)).abs() < 0.01,
                "k={k}: {got} vs {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let z = Zipf::new(40, 2.0);
        let total: f64 = (1..=40).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(41), 0.0);
    }

    #[test]
    fn zipf_s_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 1..=4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty support")]
    fn zipf_rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let mut rng = seeded_rng(1);
        let _ = exponential(0.0, &mut rng);
    }
}
