//! Power-law tail fitting by maximum likelihood.
//!
//! Implements the standard Clauset–Shalizi–Newman toolbox:
//!
//! * continuous MLE `α̂ = 1 + n / Σ ln(x_i / x_min)`,
//! * discrete MLE with the `x_min − 1/2` approximation,
//! * Kolmogorov–Smirnov distance between data and fitted model,
//! * automatic `x_min` selection by KS minimization,
//! * nonparametric bootstrap confidence intervals,
//! * inverse-CDF samplers (used to test estimator consistency and to build
//!   synthetic degree sequences).
//!
//! Exponent convention: the *density* exponent `γ` of `p(x) ∝ x^(−γ)`, the
//! quantity quoted by Internet-topology papers (`γ ≈ 2.2` for the AS map).

use crate::summary::Summary;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fitted power-law tail.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Density exponent `γ` of `p(x) ∝ x^(−γ)` for `x ≥ x_min`.
    pub gamma: f64,
    /// Asymptotic standard error `(γ − 1) / sqrt(n_tail)`.
    pub gamma_se: f64,
    /// Lower cutoff of the fitted tail.
    pub xmin: f64,
    /// Number of samples in the tail (`x ≥ x_min`).
    pub n_tail: usize,
    /// Kolmogorov–Smirnov distance between tail data and fitted model.
    pub ks: f64,
}

fn tail(samples: &[f64], xmin: f64) -> Vec<f64> {
    let mut t: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&x| x.is_finite() && x >= xmin)
        .collect();
    t.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    t
}

/// Continuous MLE at a fixed `x_min`. Returns `None` when fewer than two
/// tail samples exist or all tail samples equal `x_min` (the exponent is
/// then infinite).
pub fn fit_continuous(samples: &[f64], xmin: f64) -> Option<PowerLawFit> {
    if xmin <= 0.0 {
        return None;
    }
    let t = tail(samples, xmin);
    let n = t.len();
    if n < 2 {
        return None;
    }
    let log_sum: f64 = t.iter().map(|&x| (x / xmin).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    let gamma = 1.0 + n as f64 / log_sum;
    let ks = ks_continuous(&t, gamma, xmin);
    Some(PowerLawFit {
        gamma,
        gamma_se: (gamma - 1.0) / (n as f64).sqrt(),
        xmin,
        n_tail: n,
        ks,
    })
}

/// Discrete MLE at a fixed integer `x_min` using the continuous
/// approximation with the `x_min − 1/2` shift (accurate for `x_min ≳ 6`,
/// serviceable down to `x_min = 2`; at `x_min = 1` the approximation is
/// visibly biased for steep exponents — prefer [`fit_discrete_auto`], which
/// rarely selects `x_min = 1` on real heavy-tailed data).
pub fn fit_discrete(samples: &[u64], xmin: u64) -> Option<PowerLawFit> {
    if xmin == 0 {
        return None;
    }
    let t: Vec<f64> = samples
        .iter()
        .copied()
        .filter(|&x| x >= xmin)
        .map(|x| x as f64)
        .collect();
    let n = t.len();
    if n < 2 {
        return None;
    }
    let shift = xmin as f64 - 0.5;
    let log_sum: f64 = t.iter().map(|&x| (x / shift).ln()).sum();
    if log_sum <= 0.0 {
        return None;
    }
    let gamma = 1.0 + n as f64 / log_sum;
    let mut sorted = t;
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let ks = ks_discrete(&sorted, gamma, xmin);
    Some(PowerLawFit {
        gamma,
        gamma_se: (gamma - 1.0) / (n as f64).sqrt(),
        xmin: xmin as f64,
        n_tail: n,
        ks,
    })
}

/// Model CCDF of a continuous power law: `P(X ≥ x) = (x / x_min)^(1−γ)`.
fn model_ccdf_continuous(x: f64, gamma: f64, xmin: f64) -> f64 {
    (x / xmin).powf(1.0 - gamma)
}

fn ks_continuous(sorted_tail: &[f64], gamma: f64, xmin: f64) -> f64 {
    let n = sorted_tail.len() as f64;
    let mut ks = 0.0f64;
    for (i, &x) in sorted_tail.iter().enumerate() {
        let emp_lo = i as f64 / n; // empirical CDF just below x
        let emp_hi = (i as f64 + 1.0) / n; // empirical CDF at x
        let model = 1.0 - model_ccdf_continuous(x, gamma, xmin);
        ks = ks.max((model - emp_lo).abs()).max((model - emp_hi).abs());
    }
    ks
}

/// Hurwitz zeta `ζ(s, a) = Σ_{k≥0} (a + k)^(−s)` by direct summation plus an
/// Euler–Maclaurin tail, adequate for the `s ∈ (1, 5]` range used here.
pub fn hurwitz_zeta(s: f64, a: f64) -> f64 {
    debug_assert!(s > 1.0 && a > 0.0);
    const CUT: usize = 64;
    let mut sum = 0.0;
    for k in 0..CUT {
        sum += (a + k as f64).powf(-s);
    }
    let m = a + CUT as f64;
    // ∫_m^∞ t^-s dt + ½ m^-s + s/12 m^{-s-1} (first E-M correction terms)
    sum + m.powf(1.0 - s) / (s - 1.0) + 0.5 * m.powf(-s) + s / 12.0 * m.powf(-s - 1.0)
}

fn ks_discrete(sorted_tail: &[f64], gamma: f64, xmin: u64) -> f64 {
    // Discrete model CDF from the zeta normalization.
    let z = hurwitz_zeta(gamma, xmin as f64);
    let n = sorted_tail.len() as f64;
    let max_x = *sorted_tail.last().expect("non-empty tail") as u64;
    // Walk x upward maintaining the model CDF; evaluate at observed points.
    let mut cdf = 0.0f64;
    let mut ks = 0.0f64;
    let mut idx = 0usize;
    for x in xmin..=max_x {
        cdf += (x as f64).powf(-gamma) / z;
        // Empirical CDF after consuming all samples <= x.
        while idx < sorted_tail.len() && sorted_tail[idx] as u64 <= x {
            idx += 1;
        }
        let emp = idx as f64 / n;
        ks = ks.max((cdf - emp).abs());
        if x > xmin + 100_000 {
            break; // guard: tails beyond 1e5 values contribute negligibly
        }
    }
    ks
}

/// Fits a discrete power law, scanning `x_min` over the distinct sample
/// values and keeping the fit with the smallest KS distance (the CSN
/// procedure). `max_xmin` bounds the scan so at least ~10 tail points
/// remain.
pub fn fit_discrete_auto(samples: &[u64]) -> Option<PowerLawFit> {
    let mut distinct: Vec<u64> = samples.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 2 {
        return None;
    }
    let mut best: Option<PowerLawFit> = None;
    for &xmin in &distinct {
        let tail_n = samples.iter().filter(|&&x| x >= xmin).count();
        if tail_n < 10 {
            break;
        }
        if let Some(fit) = fit_discrete(samples, xmin) {
            if best.as_ref().map_or(true, |b| fit.ks < b.ks) {
                best = Some(fit);
            }
        }
    }
    best
}

/// Bootstrap percentile confidence interval for the exponent at fixed
/// `x_min`: resamples the tail `reps` times and returns `(lo, hi)` spanning
/// the central 90% of refitted exponents, plus the refit summary.
pub fn bootstrap_gamma_ci<R: Rng>(
    samples: &[u64],
    xmin: u64,
    reps: usize,
    rng: &mut R,
) -> Option<(f64, f64, Summary)> {
    let tail: Vec<u64> = samples.iter().copied().filter(|&x| x >= xmin).collect();
    if tail.len() < 2 || reps == 0 {
        return None;
    }
    let mut gammas = Vec::with_capacity(reps);
    let mut resample = vec![0u64; tail.len()];
    for _ in 0..reps {
        for slot in resample.iter_mut() {
            *slot = tail[rng.gen_range(0..tail.len())];
        }
        if let Some(fit) = fit_discrete(&resample, xmin) {
            gammas.push(fit.gamma);
        }
    }
    if gammas.is_empty() {
        return None;
    }
    let lo = crate::summary::percentile(&gammas, 5.0)?;
    let hi = crate::summary::percentile(&gammas, 95.0)?;
    Some((lo, hi, Summary::from_slice(&gammas)))
}

/// Samples a continuous power law `p(x) ∝ x^(−γ)`, `x ≥ x_min`, by inverse
/// CDF.
///
/// # Panics
///
/// Panics if `gamma <= 1` or `xmin <= 0` (not a normalizable tail).
pub fn sample_continuous<R: Rng>(gamma: f64, xmin: f64, rng: &mut R) -> f64 {
    assert!(gamma > 1.0 && xmin > 0.0, "not a normalizable power law");
    let u: f64 = rng.gen_range(0.0..1.0);
    xmin * (1.0 - u).powf(-1.0 / (gamma - 1.0))
}

/// Samples a discrete power law by the continuous-approximation inversion
/// (`⌊(x_min − ½)(1 − u)^(−1/(γ−1)) + ½⌋`), the standard CSN recipe.
///
/// # Panics
///
/// Panics if `gamma <= 1` or `xmin == 0`.
pub fn sample_discrete<R: Rng>(gamma: f64, xmin: u64, rng: &mut R) -> u64 {
    assert!(gamma > 1.0 && xmin > 0, "not a normalizable power law");
    let u: f64 = rng.gen_range(0.0..1.0);
    let x = (xmin as f64 - 0.5) * (1.0 - u).powf(-1.0 / (gamma - 1.0)) + 0.5;
    // Cap at a huge but finite value to avoid u ≈ 1 overflow.
    x.min(1e15) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn continuous_mle_recovers_planted_exponent() {
        let mut rng = seeded_rng(7);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_continuous(2.5, 1.0, &mut rng))
            .collect();
        let fit = fit_continuous(&xs, 1.0).unwrap();
        assert!((fit.gamma - 2.5).abs() < 0.05, "gamma = {}", fit.gamma);
        assert!(fit.ks < 0.02);
        assert_eq!(fit.n_tail, 20_000);
    }

    #[test]
    fn discrete_mle_recovers_planted_exponent() {
        let mut rng = seeded_rng(11);
        let xs: Vec<u64> = (0..20_000)
            .map(|_| sample_discrete(2.2, 5, &mut rng))
            .collect();
        let fit = fit_discrete(&xs, 5).unwrap();
        assert!((fit.gamma - 2.2).abs() < 0.07, "gamma = {}", fit.gamma);
        assert!(fit.gamma_se < 0.02);
    }

    #[test]
    fn auto_xmin_finds_transition() {
        // Mixture: uniform noise below 20, power law above.
        let mut rng = seeded_rng(3);
        let mut xs: Vec<u64> = (0..4000).map(|_| rng.gen_range(1..20)).collect();
        xs.extend((0..8000).map(|_| sample_discrete(2.4, 20, &mut rng)));
        let fit = fit_discrete_auto(&xs).unwrap();
        assert!(
            (12..=40).contains(&(fit.xmin as u64)),
            "xmin = {}",
            fit.xmin
        );
        assert!((fit.gamma - 2.4).abs() < 0.15, "gamma = {}", fit.gamma);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_continuous(&[], 1.0).is_none());
        assert!(fit_continuous(&[2.0], 1.0).is_none());
        assert!(
            fit_continuous(&[1.0, 1.0, 1.0], 1.0).is_none(),
            "zero log-sum"
        );
        assert!(fit_continuous(&[1.0, 2.0], 0.0).is_none());
        assert!(fit_discrete(&[], 1).is_none());
        assert!(fit_discrete(&[5, 9], 0).is_none());
        assert!(fit_discrete_auto(&[3; 50]).is_none());
    }

    #[test]
    fn hurwitz_zeta_matches_riemann_values() {
        // ζ(2) = π²/6, ζ(4) = π⁴/90.
        let pi = std::f64::consts::PI;
        assert!((hurwitz_zeta(2.0, 1.0) - pi * pi / 6.0).abs() < 1e-8);
        assert!((hurwitz_zeta(4.0, 1.0) - pi.powi(4) / 90.0).abs() < 1e-10);
        // ζ(s, 2) = ζ(s) − 1.
        assert!((hurwitz_zeta(2.0, 2.0) - (pi * pi / 6.0 - 1.0)).abs() < 1e-8);
    }

    #[test]
    fn bootstrap_ci_brackets_point_estimate() {
        let mut rng = seeded_rng(21);
        let xs: Vec<u64> = (0..3000)
            .map(|_| sample_discrete(2.3, 2, &mut rng))
            .collect();
        let fit = fit_discrete(&xs, 2).unwrap();
        let (lo, hi, summary) = bootstrap_gamma_ci(&xs, 2, 60, &mut rng).unwrap();
        assert!(
            lo <= fit.gamma && fit.gamma <= hi,
            "{lo} !<= {} !<= {hi}",
            fit.gamma
        );
        assert!(hi - lo < 0.3);
        assert_eq!(summary.n, 60);
    }

    #[test]
    fn bootstrap_degenerate() {
        let mut rng = seeded_rng(1);
        assert!(bootstrap_gamma_ci(&[1], 1, 10, &mut rng).is_none());
        assert!(bootstrap_gamma_ci(&[1, 2, 3], 1, 0, &mut rng).is_none());
    }

    #[test]
    fn samplers_respect_xmin() {
        let mut rng = seeded_rng(5);
        for _ in 0..1000 {
            assert!(sample_continuous(3.0, 2.5, &mut rng) >= 2.5);
            assert!(sample_discrete(3.0, 4, &mut rng) >= 4);
        }
    }

    #[test]
    #[should_panic(expected = "not a normalizable power law")]
    fn sampler_rejects_flat_exponent() {
        let mut rng = seeded_rng(5);
        let _ = sample_continuous(1.0, 1.0, &mut rng);
    }

    #[test]
    fn ks_increases_with_model_mismatch() {
        let mut rng = seeded_rng(13);
        let xs: Vec<f64> = (0..5000)
            .map(|_| sample_continuous(2.5, 1.0, &mut rng))
            .collect();
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let ks_good = ks_continuous(&sorted, 2.5, 1.0);
        let ks_bad = ks_continuous(&sorted, 4.0, 1.0);
        assert!(ks_good < ks_bad);
    }
}
