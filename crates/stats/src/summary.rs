//! Summary statistics: numerically stable moments and percentiles.

use serde::{Deserialize, Serialize};

/// Summary statistics of a univariate sample.
///
/// Mean and variance are accumulated with Welford's online algorithm, which
/// stays accurate on the many-orders-of-magnitude quantities typical of
/// heavy-tailed network data (user counts spanning `1..10^8`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean; 0 for an empty sample.
    pub mean: f64,
    /// Unbiased sample variance (`n - 1` denominator); 0 when `n < 2`.
    pub variance: f64,
    /// Smallest sample; `+inf` for an empty sample.
    pub min: f64,
    /// Largest sample; `-inf` for an empty sample.
    pub max: f64,
}

impl Summary {
    /// Computes the summary of `values` (non-finite entries are skipped).
    pub fn from_slice(values: &[f64]) -> Self {
        let mut n = 0usize;
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in values {
            if !x.is_finite() {
                continue;
            }
            n += 1;
            let d = x - mean;
            mean += d / n as f64;
            m2 += d * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean: if n == 0 { 0.0 } else { mean },
            variance: if n < 2 { 0.0 } else { m2 / (n as f64 - 1.0) },
            min,
            max,
        }
    }

    /// Convenience constructor for integer-valued samples.
    pub fn from_ints<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let v: Vec<f64> = values.into_iter().map(|x| x as f64).collect();
        Self::from_slice(&v)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean; 0 when `n < 2`.
    pub fn std_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Raw moment `⟨x^p⟩` of a sample; 0 for an empty sample.
pub fn raw_moment(values: &[f64], p: i32) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&x| x.powi(p)).sum::<f64>() / values.len() as f64
}

/// `q`-th percentile (`0 ≤ q ≤ 100`) using linear interpolation between
/// order statistics (the common "type 7" definition). Returns `None` for an
/// empty sample or out-of-range `q`.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=100.0).contains(&q) {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample in percentile"));
    let h = (sorted.len() - 1) as f64 * q / 100.0;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Some(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median of a sample (50th percentile).
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::from_slice(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn single_sample() {
        let s = Summary::from_slice(&[3.5]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!((s.min, s.max), (3.5, 3.5));
    }

    #[test]
    fn known_moments() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population variance is 4; unbiased sample variance is 32/7.
        assert!((s.variance - 32.0 / 7.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn skips_non_finite() {
        let s = Summary::from_slice(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.n, 2);
        assert!((s.mean - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_is_stable_with_large_offset() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let vals: Vec<f64> = [4.0, 7.0, 13.0, 16.0].iter().map(|x| x + base).collect();
        let s = Summary::from_slice(&vals);
        assert!(
            (s.variance - 30.0).abs() < 1e-6,
            "variance was {}",
            s.variance
        );
    }

    #[test]
    fn from_ints_matches_floats() {
        let a = Summary::from_ints([1u64, 2, 3, 4]);
        let b = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn raw_moments() {
        let v = [1.0, 2.0, 3.0];
        assert!((raw_moment(&v, 1) - 2.0).abs() < 1e-12);
        assert!((raw_moment(&v, 2) - 14.0 / 3.0).abs() < 1e-12);
        assert_eq!(raw_moment(&[], 2), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(median(&v), Some(2.5));
        assert_eq!(percentile(&v, 25.0), Some(1.75));
        assert_eq!(percentile(&v, 101.0), None);
        assert_eq!(percentile(&v, -0.1), None);
    }

    #[test]
    fn median_odd_length() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }
}
