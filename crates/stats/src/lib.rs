//! # inet-stats — statistical tooling for network science
//!
//! The measurement side of Internet topology modeling leans on a small set of
//! statistical operations that are repeated everywhere: log-binned
//! distributions, complementary CDFs, least-squares fits on log axes (growth
//! rates, scaling exponents), maximum-likelihood power-law fitting, and
//! weighted random sampling for preferential-attachment dynamics. This crate
//! implements all of them from scratch with explicit numerics:
//!
//! * [`summary`] — running moments (Welford), percentiles.
//! * [`histogram`] — linear and logarithmic binning with density
//!   normalization.
//! * [`ccdf`] — empirical CDF/CCDF over integer or real samples.
//! * [`binned`] — binned conditional means for spectra like `c(k)` or
//!   `k̄_nn(k)`.
//! * [`regression`] — ordinary least squares with standard errors; log–log
//!   and exponential-growth convenience fits.
//! * [`powerlaw`] — discrete/continuous power-law MLE
//!   (Clauset–Shalizi–Newman), Kolmogorov–Smirnov `x_min` scan, parametric
//!   bootstrap confidence intervals, and power-law samplers for tests.
//! * [`sampler`] — a Fenwick-tree [`sampler::DynamicWeightedSampler`] with
//!   `O(log n)` draw *and* update, the workhorse of every
//!   preferential-attachment generator in the workspace, plus a static
//!   cumulative-table sampler.
//! * [`dist`] — scalar distributions built on `rand` only (exponential,
//!   Pareto, log-normal via Box–Muller, Zipf by rejection-inversion).
//! * [`rng`] — deterministic seeding helpers.
//!
//! Everything is deterministic given an RNG seed, returns plain `f64`
//! results, and avoids `unwrap` on user data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binned;
pub mod ccdf;
pub mod dist;
pub mod histogram;
pub mod powerlaw;
pub mod regression;
pub mod rng;
pub mod sampler;
pub mod summary;

pub use binned::{binned_mean_by_int, binned_mean_log, BinnedSpectrum};
pub use ccdf::{ccdf_f64, ccdf_u64, Ccdf};
pub use histogram::{Histogram, LogHistogram};
pub use powerlaw::PowerLawFit;
pub use regression::{exp_growth_fit, linear_fit, loglog_fit, ExpGrowthFit, LinearFit};
pub use sampler::{CumulativeSampler, DynamicWeightedSampler};
pub use summary::Summary;
