//! Ordinary least squares and the two log-axis fits used throughout the
//! workspace: log–log (scaling exponents) and exponential growth (rates).

use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Standard error of the slope (0 when `n <= 2`).
    pub slope_se: f64,
    /// Standard error of the intercept (0 when `n <= 2`).
    pub intercept_se: f64,
    /// Coefficient of determination `R²` (1.0 for a perfect fit; 0 when the
    /// response has no variance).
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

/// Fits `y ≈ slope · x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are supplied or all `x` are
/// identical (the slope is then undefined). Non-finite pairs are skipped.
pub fn linear_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let pts: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a, b))
        .collect();
    let n = pts.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = pts.iter().map(|p| p.0).sum::<f64>() / nf;
    let my = pts.iter().map(|p| p.1).sum::<f64>() / nf;
    let sxx: f64 = pts.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = pts.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let syy: f64 = pts.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = pts
        .iter()
        .map(|p| {
            let r = p.1 - (slope * p.0 + intercept);
            r * r
        })
        .sum();
    let r2 = if syy > 0.0 { 1.0 - ss_res / syy } else { 0.0 };
    let (slope_se, intercept_se) = if n > 2 {
        let s2 = ss_res / (nf - 2.0);
        ((s2 / sxx).sqrt(), (s2 * (1.0 / nf + mx * mx / sxx)).sqrt())
    } else {
        (0.0, 0.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        slope_se,
        intercept_se,
        r2,
        n,
    })
}

/// Fits a power law `y ≈ c · x^exponent` by least squares on `ln x, ln y`.
///
/// Points with non-positive `x` or `y` are skipped. The returned fit's
/// `slope` is the scaling exponent and `exp(intercept)` the prefactor.
pub fn loglog_fit(x: &[f64], y: &[f64]) -> Option<LinearFit> {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let (lx, ly): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0 && a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .unzip();
    linear_fit(&lx, &ly)
}

/// Result of an exponential-growth fit `y(t) ≈ y0 · e^(rate · t)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpGrowthFit {
    /// Growth rate per unit of `t` (e.g. per month).
    pub rate: f64,
    /// Standard error of the rate.
    pub rate_se: f64,
    /// Fitted initial value `y0 = y(0)`.
    pub y0: f64,
    /// `R²` of the underlying log-linear regression.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

impl ExpGrowthFit {
    /// Evaluates the fitted curve at `t`.
    pub fn at(&self, t: f64) -> f64 {
        self.y0 * (self.rate * t).exp()
    }

    /// Doubling time `ln 2 / rate`; infinite for a non-growing fit.
    pub fn doubling_time(&self) -> f64 {
        if self.rate <= 0.0 {
            f64::INFINITY
        } else {
            std::f64::consts::LN_2 / self.rate
        }
    }
}

/// Fits `y(t) ≈ y0 · e^(rate t)` by OLS on `ln y`. Non-positive `y` values
/// are skipped. Returns `None` with fewer than two usable points.
pub fn exp_growth_fit(t: &[f64], y: &[f64]) -> Option<ExpGrowthFit> {
    assert_eq!(t.len(), y.len(), "t/y length mismatch");
    let (ts, ly): (Vec<f64>, Vec<f64>) = t
        .iter()
        .zip(y)
        .filter(|(&a, &b)| b > 0.0 && a.is_finite() && b.is_finite())
        .map(|(&a, &b)| (a, b.ln()))
        .unzip();
    let lf = linear_fit(&ts, &ly)?;
    Some(ExpGrowthFit {
        rate: lf.slope,
        rate_se: lf.slope_se,
        y0: lf.intercept.exp(),
        r2: lf.r2,
        n: lf.n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!(f.slope_se < 1e-9);
    }

    #[test]
    fn noisy_line_has_nonzero_errors() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 3.0 * v + ((v * 7.7).sin())).collect();
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 3.0).abs() < 0.02);
        assert!(f.slope_se > 0.0);
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(linear_fit(&[f64::NAN, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn constant_response_r2_is_zero() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 0.0);
    }

    #[test]
    fn loglog_recovers_power_exponent() {
        let x: Vec<f64> = (1..100).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| 4.0 * v.powf(-2.5)).collect();
        let f = loglog_fit(&x, &y).unwrap();
        assert!((f.slope + 2.5).abs() < 1e-9);
        assert!((f.intercept.exp() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn loglog_skips_nonpositive() {
        let f = loglog_fit(&[1.0, 2.0, 0.0, -4.0, 4.0], &[1.0, 2.0, 5.0, 5.0, 4.0]).unwrap();
        assert_eq!(f.n, 3);
        assert!((f.slope - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_growth_rate_recovered() {
        // y = 100 e^{0.03 t}, monthly samples over 54 months (the Fig. 1 shape).
        let t: Vec<f64> = (0..54).map(|m| m as f64).collect();
        let y: Vec<f64> = t.iter().map(|&m| 100.0 * (0.03 * m).exp()).collect();
        let f = exp_growth_fit(&t, &y).unwrap();
        assert!((f.rate - 0.03).abs() < 1e-10);
        assert!((f.y0 - 100.0).abs() < 1e-6);
        assert!((f.at(10.0) - 100.0 * (0.3f64).exp()).abs() < 1e-6);
        assert!((f.doubling_time() - std::f64::consts::LN_2 / 0.03).abs() < 1e-9);
    }

    #[test]
    fn decay_has_infinite_doubling_time() {
        let t = [0.0, 1.0, 2.0];
        let y = [4.0, 2.0, 1.0];
        let f = exp_growth_fit(&t, &y).unwrap();
        assert!(f.rate < 0.0);
        assert!(f.doubling_time().is_infinite());
    }
}
