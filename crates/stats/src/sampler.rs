//! Weighted random sampling.
//!
//! Preferential-attachment dynamics need to repeatedly (a) draw an index with
//! probability proportional to a weight and (b) *update* weights as the
//! network grows. [`DynamicWeightedSampler`] supports both in `O(log n)` via
//! a Fenwick (binary indexed) tree over the weights. [`CumulativeSampler`]
//! is the cheaper static variant for one-shot multinomial draws.

use rand::Rng;

/// Weighted sampler over a dynamic set of items, Fenwick-tree backed.
///
/// Weights are `f64 ≥ 0`. Items are addressed by their insertion index.
/// Draws run in `O(log n)`, as do weight updates and appends.
#[derive(Debug, Clone)]
pub struct DynamicWeightedSampler {
    /// Fenwick tree of prefix sums (1-based internally).
    tree: Vec<f64>,
    /// Raw weights for exact reads and total-maintenance.
    weights: Vec<f64>,
    total: f64,
}

impl DynamicWeightedSampler {
    /// Creates an empty sampler.
    pub fn new() -> Self {
        DynamicWeightedSampler {
            tree: vec![0.0],
            weights: Vec::new(),
            total: 0.0,
        }
    }

    /// Creates a sampler from initial weights.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or non-finite.
    pub fn from_weights(weights: &[f64]) -> Self {
        let mut s = Self::new();
        for &w in weights {
            s.push(w);
        }
        s
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` when no items have been added.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Current weight of item `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Appends an item with weight `w`; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or non-finite.
    pub fn push(&mut self, w: f64) -> usize {
        assert!(
            w.is_finite() && w >= 0.0,
            "weight must be finite and non-negative"
        );
        let i = self.weights.len();
        self.weights.push(0.0);
        self.tree.push(0.0);
        // Fenwick append: initialize node with sums of covered range (all 0).
        let idx = i + 1;
        let lsb = idx & idx.wrapping_neg();
        let mut covered = 0.0;
        let mut j = idx - 1;
        let stop = idx - lsb;
        while j > stop {
            covered += self.tree[j];
            j -= j & j.wrapping_neg();
        }
        self.tree[idx] = covered;
        self.set_weight(i, w);
        i
    }

    /// Sets the weight of item `i` to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range, or `w` is negative or non-finite.
    pub fn set_weight(&mut self, i: usize, w: f64) {
        assert!(
            w.is_finite() && w >= 0.0,
            "weight must be finite and non-negative"
        );
        let delta = w - self.weights[i];
        self.weights[i] = w;
        self.total += delta;
        let mut idx = i + 1;
        while idx < self.tree.len() {
            self.tree[idx] += delta;
            idx += idx & idx.wrapping_neg();
        }
        // Guard against drift making the total slightly negative.
        if self.total < 0.0 {
            self.total = self.weights.iter().sum();
        }
    }

    /// Adds `delta` to the weight of item `i` (clamped at 0).
    pub fn add_weight(&mut self, i: usize, delta: f64) {
        let w = (self.weights[i] + delta).max(0.0);
        self.set_weight(i, w);
    }

    /// Draws an index with probability proportional to its weight.
    ///
    /// Returns `None` when the total weight is zero (or no items exist).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Option<usize> {
        if self.total <= 0.0 || self.weights.is_empty() {
            return None;
        }
        let target = rng.gen_range(0.0..self.total);
        Some(self.find(target))
    }

    /// Finds the smallest index whose prefix sum exceeds `target`.
    fn find(&self, mut target: f64) -> usize {
        let n = self.weights.len();
        let mut pos = 0usize; // 1-based position walked so far
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = pos + step;
            // tree[next] holds the sum of the range (pos, next] at this
            // point of the descent; skip the whole range when the target
            // lies beyond it.
            if next <= n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            step >>= 1;
        }
        // pos is the count of items fully skipped; item index = pos, but
        // floating-point edge cases can land one past the end or on a
        // zero-weight item — walk forward to the next positive weight.
        let mut i = pos.min(n - 1);
        while self.weights[i] <= 0.0 && i + 1 < n {
            i += 1;
        }
        // If everything to the right is zero-weight, walk back.
        while self.weights[i] <= 0.0 && i > 0 {
            i -= 1;
        }
        i
    }
}

impl Default for DynamicWeightedSampler {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot weighted sampler over a fixed weight table (binary search on the
/// cumulative sum). Construction is `O(n)`, each draw `O(log n)`.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
}

impl CumulativeSampler {
    /// Builds the cumulative table. Returns `None` when the total weight is
    /// not strictly positive or any weight is negative/non-finite.
    pub fn new(weights: &[f64]) -> Option<Self> {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0f64;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return None;
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return None;
        }
        Some(CumulativeSampler { cumulative })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// `true` when there are no items.
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws an index with probability proportional to its weight.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let target = rng.gen_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&target).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn empty_sampler_returns_none() {
        let s = DynamicWeightedSampler::new();
        let mut rng = seeded_rng(0);
        assert!(s.sample(&mut rng).is_none());
        assert!(s.is_empty());
        assert_eq!(s.total(), 0.0);
    }

    #[test]
    fn zero_total_returns_none() {
        let s = DynamicWeightedSampler::from_weights(&[0.0, 0.0]);
        let mut rng = seeded_rng(0);
        assert!(s.sample(&mut rng).is_none());
    }

    #[test]
    fn single_item_always_selected() {
        let s = DynamicWeightedSampler::from_weights(&[0.3]);
        let mut rng = seeded_rng(1);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng), Some(0));
        }
    }

    #[test]
    fn zero_weight_items_never_selected() {
        let s = DynamicWeightedSampler::from_weights(&[0.0, 1.0, 0.0, 2.0, 0.0]);
        let mut rng = seeded_rng(2);
        for _ in 0..2000 {
            let i = s.sample(&mut rng).unwrap();
            assert!(i == 1 || i == 3, "selected zero-weight item {i}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let s = DynamicWeightedSampler::from_weights(&weights);
        let mut rng = seeded_rng(3);
        let mut counts = [0usize; 4];
        let draws = 100_000;
        for _ in 0..draws {
            counts[s.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / draws as f64;
            assert!((got - expect).abs() < 0.01, "item {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn updates_shift_frequencies() {
        let mut s = DynamicWeightedSampler::from_weights(&[1.0, 1.0]);
        s.set_weight(0, 9.0);
        let mut rng = seeded_rng(4);
        let mut zero = 0usize;
        for _ in 0..20_000 {
            if s.sample(&mut rng).unwrap() == 0 {
                zero += 1;
            }
        }
        let frac = zero as f64 / 20_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac = {frac}");
        assert!((s.total() - 10.0).abs() < 1e-12);
        assert_eq!(s.weight(0), 9.0);
    }

    #[test]
    fn add_weight_clamps_at_zero() {
        let mut s = DynamicWeightedSampler::from_weights(&[2.0, 5.0]);
        s.add_weight(0, -7.0);
        assert_eq!(s.weight(0), 0.0);
        assert!((s.total() - 5.0).abs() < 1e-12);
        let mut rng = seeded_rng(5);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn push_grows_sampler_incrementally() {
        let mut s = DynamicWeightedSampler::new();
        for i in 0..100 {
            assert_eq!(s.push(i as f64 + 1.0), i);
        }
        assert_eq!(s.len(), 100);
        let expected: f64 = (1..=100).map(|i| i as f64).sum();
        assert!((s.total() - expected).abs() < 1e-9);
        // Spot-check sampling still matches weights after many pushes.
        let mut rng = seeded_rng(6);
        let mut high = 0usize;
        for _ in 0..20_000 {
            if s.sample(&mut rng).unwrap() >= 50 {
                high += 1;
            }
        }
        // Items 50..100 carry weights 51..=100 = 3775 of 5050 total.
        let frac = high as f64 / 20_000.0;
        assert!((frac - 3775.0 / 5050.0).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_weight_panics() {
        let _ = DynamicWeightedSampler::from_weights(&[-1.0]);
    }

    #[test]
    fn cumulative_sampler_basics() {
        assert!(CumulativeSampler::new(&[]).is_none());
        assert!(CumulativeSampler::new(&[0.0]).is_none());
        assert!(CumulativeSampler::new(&[-1.0, 2.0]).is_none());
        assert!(CumulativeSampler::new(&[f64::NAN]).is_none());

        let s = CumulativeSampler::new(&[1.0, 0.0, 3.0]).unwrap();
        assert_eq!(s.len(), 3);
        let mut rng = seeded_rng(7);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.01, "frac0 = {frac0}");
    }
}
