//! Deterministic RNG construction.
//!
//! Every stochastic routine in the workspace takes `&mut impl Rng` (or a
//! `StdRng` explicitly), and every experiment seeds it through this module so
//! runs are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic [`StdRng`] from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index, so independent
/// experiment arms (e.g. the points of a system-size sweep) get decorrelated
/// but reproducible generators.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mix — child
/// seeds never collide for distinct `(base, stream)` pairs with the same
/// base.
pub fn child_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Convenience: a child RNG for stream `stream` of base seed `base`.
pub fn child_rng(base: u64, stream: u64) -> StdRng {
    seeded_rng(child_seed(base, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = seeded_rng(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u64> = seeded_rng(42)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = seeded_rng(1).gen();
        let b: u64 = seeded_rng(2).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn child_seeds_are_distinct_across_streams() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..1000 {
            assert!(
                seen.insert(child_seed(99, stream)),
                "collision at stream {stream}"
            );
        }
    }

    #[test]
    fn child_rng_is_reproducible() {
        let a: u64 = child_rng(7, 3).gen();
        let b: u64 = child_rng(7, 3).gen();
        let c: u64 = child_rng(7, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
