//! Linear and logarithmic histograms.

use serde::{Deserialize, Serialize};

/// A fixed-width linear histogram over `[lo, hi)`.
///
/// Samples outside the range are counted separately (`underflow` /
/// `overflow`) rather than silently dropped, so totals always reconcile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi` or either bound is non-finite —
    /// these are programming errors, not data errors.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && lo < hi, "invalid range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let f = (x - self.lo) / (self.hi - self.lo);
            let idx = ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Adds every sample of a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total in-range samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// `(center, probability density)` pairs; densities integrate to the
    /// in-range probability mass. Empty histogram yields all-zero densities.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let total = self.total() as f64 + self.underflow as f64 + self.overflow as f64;
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = if total > 0.0 {
                    c as f64 / (total * w)
                } else {
                    0.0
                };
                (self.bin_center(i), d)
            })
            .collect()
    }
}

/// A histogram with logarithmically spaced bins, the standard tool for
/// visualizing heavy-tailed distributions (degree, betweenness, user counts).
///
/// Bin `i` covers `[lo * ratio^i, lo * ratio^(i+1))`. Densities are
/// normalized per unit of `x` (not per unit of `log x`), so a power law
/// `p(x) ~ x^(-γ)` appears as a straight line of slope `-γ` on log–log axes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    lo: f64,
    ratio: f64,
    counts: Vec<u64>,
    /// Samples below `lo` (including non-positive ones, which have no
    /// logarithm).
    pub underflow: u64,
    /// Samples at or above the top edge.
    pub overflow: u64,
}

impl LogHistogram {
    /// Creates a log histogram from `lo` to `hi` with `bins` bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, `lo <= 0`, or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo > 0.0 && lo < hi && hi.is_finite(), "invalid log range");
        let ratio = (hi / lo).powf(1.0 / bins as f64);
        LogHistogram {
            lo,
            ratio,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Log histogram sized for positive integer data `1..=max` with roughly
    /// `bins_per_decade` bins per factor of ten.
    pub fn for_integer_data(max: u64, bins_per_decade: usize) -> Self {
        let hi = (max.max(2)) as f64 * 1.0001;
        let decades = hi.log10().max(0.1);
        let bins = ((decades * bins_per_decade as f64).ceil() as usize).max(1);
        Self::new(1.0, hi, bins)
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        if !x.is_finite() || x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = (x / self.lo).ln() / self.ratio.ln();
        let idx = idx as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Adds every sample of a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Lower edge of bin `i`.
    pub fn bin_lo(&self, i: usize) -> f64 {
        self.lo * self.ratio.powi(i as i32)
    }

    /// Geometric center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.bin_lo(i) * self.ratio.sqrt()
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(geometric center, density per unit x)` for non-empty bins only.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let total: u64 = self.counts.iter().sum::<u64>() + self.underflow + self.overflow;
        if total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let width = self.bin_lo(i) * (self.ratio - 1.0);
                (self.bin_center(i), c as f64 / (total as f64 * width))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.add_all(&[0.0, 0.5, 9.99, 10.0, -0.1, f64::NAN]);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 2);
        assert_eq!(h.total(), 3);
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn linear_density_integrates_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add_all(&[0.1, 0.3, 0.6, 0.9]);
        let mass: f64 = h.density().iter().map(|&(_, d)| d * 0.25).sum();
        assert!((mass - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_linear_histogram_density_is_zero() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!(h.density().iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn linear_rejects_bad_range() {
        let _ = Histogram::new(2.0, 1.0, 4);
    }

    #[test]
    fn log_bins_are_geometric() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        assert!((h.bin_lo(0) - 1.0).abs() < 1e-9);
        assert!((h.bin_lo(1) - 10.0).abs() < 1e-9);
        assert!((h.bin_lo(2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn log_add_routes_to_correct_bin() {
        let mut h = LogHistogram::new(1.0, 1000.0, 3);
        h.add_all(&[1.0, 5.0, 15.0, 999.0, 1000.0, 0.5, 0.0, -3.0]);
        assert_eq!(h.counts(), &[2, 1, 1]);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 3);
    }

    #[test]
    fn log_density_recovers_power_law_slope() {
        // Sample an exact discrete Zipf-like set: p(x) ∝ x^-2 over 1..10^4,
        // deterministically via expected counts.
        let mut h = LogHistogram::new(1.0, 1e4, 20);
        for x in 1..10_000u64 {
            let copies = (4e6 / (x * x) as f64).round() as u64;
            for _ in 0..copies {
                h.add(x as f64);
            }
        }
        let d = h.density();
        // Fit slope on log–log via simple least squares; expect ≈ -2.
        let pts: Vec<(f64, f64)> = d
            .iter()
            .filter(|&&(_, y)| y > 0.0)
            .map(|&(x, y)| (x.ln(), y.ln()))
            .collect();
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
        assert!((slope + 2.0).abs() < 0.15, "slope was {slope}");
    }

    #[test]
    fn for_integer_data_covers_max() {
        let mut h = LogHistogram::for_integer_data(5000, 10);
        h.add(5000.0);
        assert_eq!(h.overflow, 0);
        assert_eq!(h.counts().iter().sum::<u64>(), 1);
    }

    #[test]
    fn log_density_skips_empty_bins() {
        let mut h = LogHistogram::new(1.0, 100.0, 10);
        h.add(2.0);
        let d = h.density();
        assert_eq!(d.len(), 1);
    }
}
