//! Binned conditional means ("spectra").
//!
//! Measures like the clustering spectrum `c(k)` or the average
//! nearest-neighbors degree `k̄_nn(k)` are conditional means of a per-node
//! quantity given the node degree. For small `k` we can average exactly per
//! integer degree; for the sparse heavy tail, logarithmic bins pool nearby
//! degrees to tame noise.

use serde::{Deserialize, Serialize};

/// A spectrum: for each bin, the mean of `y` over the samples whose `x`
/// landed in that bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedSpectrum {
    /// Representative `x` of each non-empty bin (exact value or geometric
    /// center), ascending.
    pub x: Vec<f64>,
    /// Mean of `y` per bin.
    pub y: Vec<f64>,
    /// Number of samples per bin.
    pub count: Vec<usize>,
}

impl BinnedSpectrum {
    /// Looks up the mean for an exact `x` value, if that bin exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.x
            .iter()
            .position(|&v| (v - x).abs() < 1e-9)
            .map(|i| self.y[i])
    }

    /// Iterates `(x, mean y, count)` triples.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64, usize)> + '_ {
        self.x
            .iter()
            .zip(&self.y)
            .zip(&self.count)
            .map(|((&x, &y), &c)| (x, y, c))
    }
}

/// Exact conditional mean of `y` for every distinct integer `x` (e.g. mean
/// clustering for every degree value). Pairs are `(x[i], y[i])`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn binned_mean_by_int(x: &[u64], y: &[f64]) -> BinnedSpectrum {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    let mut pairs: Vec<(u64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
    pairs.sort_by_key(|p| p.0);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut counts = Vec::new();
    let mut i = 0;
    while i < pairs.len() {
        let v = pairs[i].0;
        let mut sum = 0.0;
        let mut c = 0usize;
        while i < pairs.len() && pairs[i].0 == v {
            sum += pairs[i].1;
            c += 1;
            i += 1;
        }
        xs.push(v as f64);
        ys.push(sum / c as f64);
        counts.push(c);
    }
    BinnedSpectrum {
        x: xs,
        y: ys,
        count: counts,
    }
}

/// Log-binned conditional mean: `x` values are pooled into geometric bins
/// with `bins_per_decade` bins per factor of ten, and the mean of `y` is
/// reported at each bin's geometric center. Samples with `x <= 0` are
/// skipped.
///
/// # Panics
///
/// Panics if the slices have different lengths or `bins_per_decade == 0`.
pub fn binned_mean_log(x: &[f64], y: &[f64], bins_per_decade: usize) -> BinnedSpectrum {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(bins_per_decade > 0, "need at least one bin per decade");
    let ratio = 10f64.powf(1.0 / bins_per_decade as f64);
    let lr = ratio.ln();
    // bin index = floor(ln(x) / ln(ratio)), can be negative for x < 1.
    let mut acc: std::collections::BTreeMap<i64, (f64, usize)> = std::collections::BTreeMap::new();
    for (&xv, &yv) in x.iter().zip(y) {
        if xv <= 0.0 || !xv.is_finite() || !yv.is_finite() {
            continue;
        }
        let bin = (xv.ln() / lr).floor() as i64;
        let e = acc.entry(bin).or_insert((0.0, 0));
        e.0 += yv;
        e.1 += 1;
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut counts = Vec::new();
    for (bin, (sum, c)) in acc {
        let center = (lr * (bin as f64 + 0.5)).exp();
        xs.push(center);
        ys.push(sum / c as f64);
        counts.push(c);
    }
    BinnedSpectrum {
        x: xs,
        y: ys,
        count: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_binning_groups_exactly() {
        let x = [2u64, 3, 2, 5, 3, 3];
        let y = [1.0, 2.0, 3.0, 4.0, 5.0, 8.0];
        let s = binned_mean_by_int(&x, &y);
        assert_eq!(s.x, vec![2.0, 3.0, 5.0]);
        assert_eq!(s.y, vec![2.0, 5.0, 4.0]);
        assert_eq!(s.count, vec![2, 3, 1]);
        assert_eq!(s.y_at(3.0), Some(5.0));
        assert_eq!(s.y_at(4.0), None);
    }

    #[test]
    fn int_binning_empty() {
        let s = binned_mean_by_int(&[], &[]);
        assert!(s.x.is_empty());
    }

    #[test]
    fn log_binning_pools_geometrically() {
        // One bin per decade: 1..10 pools, 10..100 pools.
        let x = [2.0, 3.0, 20.0, 30.0];
        let y = [1.0, 3.0, 10.0, 30.0];
        let s = binned_mean_log(&x, &y, 1);
        assert_eq!(s.x.len(), 2);
        assert_eq!(s.y, vec![2.0, 20.0]);
        assert_eq!(s.count, vec![2, 2]);
        // Geometric centers: 10^0.5 and 10^1.5.
        assert!((s.x[0] - 10f64.powf(0.5)).abs() < 1e-9);
        assert!((s.x[1] - 10f64.powf(1.5)).abs() < 1e-9);
    }

    #[test]
    fn log_binning_skips_nonpositive_and_nonfinite() {
        let x = [0.0, -1.0, f64::NAN, 5.0];
        let y = [9.0, 9.0, 9.0, 2.0];
        let s = binned_mean_log(&x, &y, 2);
        assert_eq!(s.count, vec![1]);
        assert_eq!(s.y, vec![2.0]);
    }

    #[test]
    fn points_iterator() {
        let s = binned_mean_by_int(&[1, 1], &[2.0, 4.0]);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![(1.0, 3.0, 2)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = binned_mean_by_int(&[1], &[]);
    }
}
