//! Property-based tests for the statistical toolbox.

use inet_stats::rng::seeded_rng;
use inet_stats::{ccdf_f64, linear_fit, loglog_fit, DynamicWeightedSampler, Summary};
use proptest::prelude::*;

proptest! {
    /// CCDF starts at 1, is monotone non-increasing, and `at` agrees with
    /// direct counting.
    #[test]
    fn ccdf_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let c = ccdf_f64(&xs);
        prop_assert_eq!(c.n, xs.len());
        prop_assert!((c.ccdf[0] - 1.0).abs() < 1e-12);
        for w in c.ccdf.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        // at() agrees with direct counting for a few probes.
        for &probe in xs.iter().take(10) {
            let direct = xs.iter().filter(|&&x| x >= probe).count() as f64 / xs.len() as f64;
            prop_assert!((c.at(probe) - direct).abs() < 1e-12);
        }
    }

    /// Summary mean is within [min, max]; variance is non-negative.
    #[test]
    fn summary_bounds(xs in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.mean >= s.min - 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.variance >= 0.0);
        prop_assert_eq!(s.n, xs.len());
    }

    /// Fitting a noiseless planted line recovers it to floating-point
    /// accuracy, regardless of the sampled coefficients.
    #[test]
    fn linear_fit_recovers_planted_line(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..60,
    ) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| slope * v + intercept).collect();
        let f = linear_fit(&x, &y).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((f.intercept - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    /// Log-log fit recovers a planted power law for any positive prefactor
    /// and exponent in a reasonable range.
    #[test]
    fn loglog_fit_recovers_planted_power(
        expo in -4.0f64..4.0,
        prefactor in 0.01f64..100.0,
    ) {
        let x: Vec<f64> = (1..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|&v| prefactor * v.powf(expo)).collect();
        let f = loglog_fit(&x, &y).unwrap();
        prop_assert!((f.slope - expo).abs() < 1e-6);
    }

    /// The Fenwick sampler's total always equals the sum of its weights,
    /// and sampling only returns indices with positive weight.
    #[test]
    fn fenwick_sampler_consistency(
        weights in proptest::collection::vec(0.0f64..100.0, 1..80),
        updates in proptest::collection::vec((0usize..80, 0.0f64..100.0), 0..40),
        seed in 0u64..1000,
    ) {
        let mut s = DynamicWeightedSampler::from_weights(&weights);
        let mut expect: Vec<f64> = weights.clone();
        for (i, w) in updates {
            let i = i % expect.len();
            s.set_weight(i, w);
            expect[i] = w;
        }
        let total: f64 = expect.iter().sum();
        prop_assert!((s.total() - total).abs() < 1e-6 * (1.0 + total));
        let mut rng = seeded_rng(seed);
        if total > 0.0 {
            for _ in 0..20 {
                let i = s.sample(&mut rng).unwrap();
                prop_assert!(expect[i] > 0.0, "sampled zero-weight index {i}");
            }
        } else {
            prop_assert!(s.sample(&mut rng).is_none());
        }
    }

    /// Discrete power-law samples are always >= xmin and the MLE exponent
    /// lands near the planted one for large-enough samples. Domain note:
    /// the CSN `xmin - 1/2` continuous approximation biases both the
    /// sampler and the estimator, and the residual mismatch grows with the
    /// exponent at small `xmin` — visible from `xmin = 1` (excluded) and
    /// beyond `gamma ~ 3.3` (excluded); inside the domain the bias stays
    /// within the asserted band.
    #[test]
    fn powerlaw_sampler_and_mle(gamma in 1.8f64..3.2, xmin in 2u64..8) {
        let mut rng = seeded_rng(gamma.to_bits() ^ xmin);
        let xs: Vec<u64> = (0..6000)
            .map(|_| inet_stats::powerlaw::sample_discrete(gamma, xmin, &mut rng))
            .collect();
        prop_assert!(xs.iter().all(|&x| x >= xmin));
        let fit = inet_stats::powerlaw::fit_discrete(&xs, xmin).unwrap();
        // Generous tolerance: 6k samples, discrete approximation.
        prop_assert!((fit.gamma - gamma).abs() < 0.35,
            "planted {gamma}, fitted {}", fit.gamma);
    }
}
