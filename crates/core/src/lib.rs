//! # inet-model — an Internet topology modeling & validation toolkit
//!
//! The facade crate of the workspace: re-exports the substrate crates under
//! stable names and adds the pieces that tie them into a toolkit:
//!
//! * [`mod@reference`] — published target statistics of the real AS maps
//!   (May 2001 Oregon map and the extended AS+ map), with citations, plus a
//!   calibrated **reference topology builder** that stands in for the raw
//!   map archives (offline; see `DESIGN.md` §1).
//! * [`validation`] — compare any generated topology against a target set
//!   with explicit tolerances; returns a per-metric pass/fail report.
//! * [`experiment`] — shared experiment machinery for the figure-reproduction
//!   binaries: standard seeds, model-network construction, aligned-table and
//!   series printing, CSV output under `target/figures/`.
//!
//! ## Layer map
//!
//! | Layer | Crate | Re-exported as |
//! |---|---|---|
//! | graph substrate | `inet-graph` | [`graph`] |
//! | statistics | `inet-stats` | [`stats`] |
//! | spatial substrates | `inet-spatial` | [`spatial`] |
//! | topology measures | `inet-metrics` | [`metrics`] |
//! | generators | `inet-generators` | [`generators`] |
//! | growth machinery | `inet-growth` | [`growth`] |
//! | attack/failure response | `inet-resilience` | [`resilience`] |
//! | scenario pipeline | `inet-pipeline` | [`pipeline`] |
//! | telemetry | `inet-obs` | [`obs`] |
//!
//! ## Quickstart
//!
//! ```
//! use inet_model::prelude::*;
//!
//! // Grow a small competition–adaptation Internet and measure it.
//! let mut rng = seeded_rng(7);
//! let model = SerranoModel::new(SerranoParams::small(300));
//! let net = model.generate(&mut rng);
//! let report = TopologyReport::measure(&net.graph.to_csr());
//! assert!(report.nodes >= 300);
//! assert!(report.giant_fraction > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod reference;
pub mod validation;

pub use inet_fault as fault;
pub use inet_generators as generators;
pub use inet_graph as graph;
pub use inet_growth as growth;
pub use inet_metrics as metrics;
pub use inet_obs as obs;
pub use inet_pipeline as pipeline;
pub use inet_resilience as resilience;
pub use inet_spatial as spatial;
pub use inet_stats as stats;

/// One-line imports for applications.
pub mod prelude {
    pub use crate::generators::{
        AlbertBarabasiExtended, BarabasiAlbert, BianconiBarabasi, BriteLike, ConfigurationModel,
        FitnessDistribution, Fkp, GeneratedNetwork, Generator, Glp, Gnm, Gnp, GohStatic, InetLike,
        Pfp, RandomGeometric, SerranoModel, SerranoParams, WattsStrogatz, Waxman,
    };
    pub use crate::graph::{CancelToken, Csr, MultiGraph, NodeId};
    pub use crate::growth::{GrowthRates, InternetTrace, TraceConfig};
    pub use crate::metrics::{
        ClusteringStats, CycleCensus, DegreeStats, KCoreDecomposition, KnnStats, PathStats,
        TopologyReport,
    };
    pub use crate::reference::{build_reference_map, ReferenceTargets};
    pub use crate::resilience::{
        percolation_curve, run_sweep, AttackCurve, Strategy, SweepConfig, SweepResult,
    };
    pub use crate::stats::rng::{child_rng, seeded_rng};
    pub use crate::validation::{ValidationOutcome, ValidationReport};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_layers_interoperate() {
        let mut rng = seeded_rng(1);
        let net = Gnp::new(40, 0.2).generate(&mut rng);
        let csr = net.graph.to_csr();
        let report = TopologyReport::measure(&csr);
        assert_eq!(report.nodes, 40);
    }
}
