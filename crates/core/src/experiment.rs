//! Shared machinery for the figure-reproduction binaries.
//!
//! Each experiment binary (see `crates/bench/src/bin/`) regenerates one
//! table or figure: it builds the standard networks, measures them, prints
//! the series/rows to stdout, and writes CSV files under
//! `target/figures/<experiment>/` for plotting.

use inet_generators::serrano::SerranoRun;
use inet_generators::{SerranoModel, SerranoParams};
use inet_stats::rng::child_rng;
use std::io::Write;
use std::path::PathBuf;

/// The workspace-wide base seed: every experiment derives child seeds from
/// it, so the whole evaluation is reproducible end to end.
pub const BASE_SEED: u64 = 0x1_2005_0388;

/// Standard model networks used across the figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelVariant {
    /// Competition–adaptation model with the distance constraint.
    WithDistance,
    /// Competition–adaptation model without the distance constraint.
    WithoutDistance,
}

impl ModelVariant {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            ModelVariant::WithDistance => "model with distance",
            ModelVariant::WithoutDistance => "model without distance",
        }
    }

    /// Paper parameterization for this variant at the given size.
    pub fn params(&self, target_n: usize) -> SerranoParams {
        let mut p = match self {
            ModelVariant::WithDistance => SerranoParams::paper_2001(),
            ModelVariant::WithoutDistance => SerranoParams::paper_2001_no_distance(),
        };
        p.target_n = target_n;
        p
    }

    /// Runs the model at `target_n` with a deterministic per-experiment
    /// seed stream.
    pub fn run(&self, target_n: usize, stream: u64) -> SerranoRun {
        let model = SerranoModel::new(self.params(target_n));
        let mut rng = child_rng(BASE_SEED, stream);
        model.run(&mut rng)
    }
}

/// Output sink for an experiment: echoes rows to stdout and mirrors them
/// into `target/figures/<experiment>/<series>.csv`.
#[derive(Debug)]
pub struct FigureSink {
    dir: PathBuf,
}

impl FigureSink {
    /// Creates the sink (and its directory) for an experiment id like
    /// `"fig2_degree"`.
    pub fn new(experiment: &str) -> std::io::Result<Self> {
        let dir = PathBuf::from("target").join("figures").join(experiment);
        std::fs::create_dir_all(&dir)?;
        Ok(FigureSink { dir })
    }

    /// Directory the CSVs land in.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Writes a named series as CSV (`header` then one row per point) and
    /// echoes a short confirmation to stdout.
    pub fn series(
        &self,
        name: &str,
        header: &str,
        rows: impl IntoIterator<Item = Vec<f64>>,
    ) -> std::io::Result<PathBuf> {
        let path = self.dir.join(format!("{name}.csv"));
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{header}")?;
        let mut count = 0usize;
        for row in rows {
            let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
            writeln!(file, "{}", line.join(","))?;
            count += 1;
        }
        println!("  [csv] {} ({count} rows) -> {}", name, path.display());
        Ok(path)
    }
}

/// Prints a section header in the uniform style of the experiment binaries.
pub fn banner(title: &str) {
    println!("{}", "=".repeat(title.len().max(24)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(24)));
}

/// Formats a `(value, error)` pair as `v ± e` with sensible digits.
pub fn pm(value: f64, error: f64) -> String {
    format!("{value:.2} +- {error:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_paper_params() {
        let with = ModelVariant::WithDistance.params(500);
        assert!(with.distance.is_some());
        assert_eq!(with.target_n, 500);
        let without = ModelVariant::WithoutDistance.params(500);
        assert!(without.distance.is_none());
        assert_eq!(ModelVariant::WithDistance.label(), "model with distance");
    }

    #[test]
    fn runs_are_reproducible_per_stream() {
        let a = ModelVariant::WithoutDistance.run(120, 7);
        let b = ModelVariant::WithoutDistance.run(120, 7);
        assert_eq!(a.network.graph, b.network.graph);
        let c = ModelVariant::WithoutDistance.run(120, 8);
        assert_ne!(a.network.graph, c.network.graph);
    }

    #[test]
    fn sink_writes_csv() {
        let sink = FigureSink::new("test_sink_unit").unwrap();
        let path = sink
            .series("demo", "x,y", vec![vec![1.0, 2.0], vec![3.0, 4.0]])
            .unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn pm_formats() {
        assert_eq!(pm(1.455, 0.07), "1.46 +- 0.07");
    }
}
