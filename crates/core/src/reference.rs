//! Published statistics of the real AS maps, and the calibrated reference
//! topology that stands in for the raw archives.
//!
//! The raw Oregon Route-Views BGP dumps and the AS+ extended map are
//! offline data sources. Their *published statistics*, however, are stable
//! quantities quoted across the literature (Pastor-Satorras & Vespignani
//! 2004; Pastor-Satorras, Vázquez & Vespignani PRL 87 258701; Bianconi,
//! Caldarelli & Capocci PRE 71 066116; Zhou & Mondragón PRE 70 066108).
//! They are recorded here as named constants, and a **reference topology**
//! with those statistics is built from an *independent* generator family
//! (Inet-style degree-sequence construction) so that model-vs-reference
//! comparisons are not circular.

use inet_generators::{GeneratedNetwork, Generator, InetLike};
use inet_graph::Csr;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Target statistics of a real Internet AS map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReferenceTargets {
    /// Short tag ("AS 2001", "AS+ 2001").
    pub name: &'static str,
    /// Number of ASs.
    pub nodes: usize,
    /// Mean degree `⟨k⟩`.
    pub mean_degree: f64,
    /// Degree exponent `γ`.
    pub gamma: f64,
    /// Uncertainty on `γ`.
    pub gamma_tolerance: f64,
    /// Mean local clustering coefficient.
    pub mean_clustering: f64,
    /// Average shortest path length.
    pub mean_path_length: f64,
    /// Newman assortativity coefficient (disassortative ⇒ negative).
    pub assortativity: f64,
    /// Maximum core number.
    pub coreness: u32,
    /// Loop-scaling exponents `ξ(3), ξ(4), ξ(5)` (Bianconi et al. 2005,
    /// Table I of the source text).
    pub xi: [f64; 3],
    /// Uncertainties on `ξ(h)`.
    pub xi_tolerance: [f64; 3],
}

/// May 2001 Oregon Route-Views AS map (`N ≈ 11 174`, `⟨k⟩ ≈ 4.2`).
pub const AS_MAP_2001: ReferenceTargets = ReferenceTargets {
    name: "AS 2001",
    nodes: 11_174,
    mean_degree: 4.19,
    gamma: 2.22,
    gamma_tolerance: 0.1,
    mean_clustering: 0.30,
    mean_path_length: 3.62,
    assortativity: -0.19,
    coreness: 17,
    xi: [1.45, 2.07, 2.45],
    xi_tolerance: [0.07, 0.01, 0.08],
};

/// Extended AS+ map (Oregon + looking-glass + IRR sources; denser:
/// `⟨k⟩ ≈ 5.7`, deeper core).
pub const AS_PLUS_2001: ReferenceTargets = ReferenceTargets {
    name: "AS+ 2001",
    nodes: 11_461,
    mean_degree: 5.70,
    gamma: 2.25,
    gamma_tolerance: 0.1,
    mean_clustering: 0.35,
    mean_path_length: 3.56,
    assortativity: -0.19,
    coreness: 25,
    xi: [1.45, 2.07, 2.45],
    xi_tolerance: [0.07, 0.01, 0.08],
};

/// Builds the reference AS topology: an Inet-style network calibrated to
/// `targets` (size and degree exponent by construction; correlations arise
/// from the preferential stub matching). Returns the network; its giant
/// component should be used for path-based measures.
pub fn build_reference_map(targets: &ReferenceTargets, rng: &mut StdRng) -> GeneratedNetwork {
    let mut net = InetLike::new(targets.nodes, targets.gamma, 1).generate(rng);
    net.name = format!("reference {}", targets.name);
    net
}

/// Convenience: reference map as a CSR snapshot of its giant component.
pub fn build_reference_csr(targets: &ReferenceTargets, rng: &mut StdRng) -> Csr {
    let net = build_reference_map(targets, rng);
    let (giant, _) = inet_graph::traversal::giant_component(&net.graph.to_csr());
    giant
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_stats::rng::seeded_rng;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the test subject
    fn targets_are_internally_consistent() {
        for t in [AS_MAP_2001, AS_PLUS_2001] {
            assert!(t.gamma > 2.0 && t.gamma < 2.5);
            assert!(t.assortativity < 0.0, "the AS map is disassortative");
            assert!(t.mean_path_length < 4.0, "small world");
            assert!(
                t.xi[0] < t.xi[1] && t.xi[1] < t.xi[2],
                "loop exponents increase with h"
            );
        }
        assert!(AS_PLUS_2001.mean_degree > AS_MAP_2001.mean_degree);
        assert!(AS_PLUS_2001.coreness > AS_MAP_2001.coreness);
    }

    #[test]
    fn reference_map_hits_size_and_exponent() {
        let mut rng = seeded_rng(42);
        let net = build_reference_map(&AS_MAP_2001, &mut rng);
        assert_eq!(net.graph.node_count(), AS_MAP_2001.nodes);
        let degrees: Vec<u64> = net.graph.degrees().iter().map(|&d| d as u64).collect();
        let fit = inet_stats::powerlaw::fit_discrete(&degrees, 2).unwrap();
        assert!(
            (fit.gamma - AS_MAP_2001.gamma).abs() < 0.25,
            "gamma = {}",
            fit.gamma
        );
        assert!(net.name.contains("reference"));
    }

    #[test]
    fn reference_csr_is_connected_giant() {
        let mut rng = seeded_rng(43);
        let csr = build_reference_csr(&AS_MAP_2001, &mut rng);
        assert!(csr.node_count() as f64 > 0.95 * AS_MAP_2001.nodes as f64);
        assert!(inet_graph::traversal::connected_components(&csr).is_connected());
    }

    #[test]
    fn reference_map_is_small_world_and_disassortative() {
        let mut rng = seeded_rng(44);
        let csr = build_reference_csr(&AS_MAP_2001, &mut rng);
        let paths = inet_metrics::PathStats::measure_sampled(&csr, 80, 4);
        assert!(paths.mean < 5.5, "mean path {}", paths.mean);
        let knn = inet_metrics::KnnStats::measure(&csr);
        assert!(knn.assortativity < 0.0);
    }
}
