//! Validation of generated topologies against reference targets.

use crate::reference::ReferenceTargets;
use inet_graph::Csr;
use inet_metrics::report::{ReportOptions, TopologyReport};
use serde::{Deserialize, Serialize};

/// Outcome of one metric check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationOutcome {
    /// Metric name.
    pub metric: String,
    /// Value measured on the candidate topology.
    pub measured: f64,
    /// Target value.
    pub target: f64,
    /// Acceptable absolute deviation.
    pub tolerance: f64,
    /// Whether the measurement lies within tolerance.
    pub pass: bool,
}

/// Per-metric comparison of a topology against a reference target set.
///
/// Tolerances are deliberately generous — the point is to detect the
/// *category* failures that disqualify a model (light tails, assortative
/// mixing, missing small world), not to fine-tune constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All checks, in a stable order.
    pub outcomes: Vec<ValidationOutcome>,
    /// The headline report the checks were computed from.
    pub report: TopologyReport,
}

impl ValidationReport {
    /// Measures `g` and compares it against `targets`.
    pub fn run(g: &Csr, targets: &ReferenceTargets) -> Self {
        Self::run_with(g, targets, ReportOptions::default())
    }

    /// Like [`ValidationReport::run`] with explicit sampling effort.
    pub fn run_with(g: &Csr, targets: &ReferenceTargets, opt: ReportOptions) -> Self {
        let report = TopologyReport::measure_with(g, opt);
        let mut outcomes = Vec::new();
        let mut check = |metric: &str, measured: f64, target: f64, tolerance: f64| {
            outcomes.push(ValidationOutcome {
                metric: metric.to_string(),
                measured,
                target,
                tolerance,
                pass: (measured - target).abs() <= tolerance,
            });
        };
        check(
            "mean degree",
            report.mean_degree,
            targets.mean_degree,
            0.5 * targets.mean_degree,
        );
        // An unfittable tail reports 0 (a guaranteed FAIL against any real
        // gamma target) rather than NaN, which would poison downstream
        // arithmetic and render as "NaN" in the table.
        check(
            "gamma",
            report.gamma.unwrap_or(0.0),
            targets.gamma,
            3.0 * targets.gamma_tolerance,
        );
        check(
            "mean clustering",
            report.mean_clustering,
            targets.mean_clustering,
            0.7 * targets.mean_clustering,
        );
        check(
            "mean path length",
            report.mean_path_length,
            targets.mean_path_length,
            1.5,
        );
        // Sign matters more than magnitude for assortativity.
        check(
            "assortativity",
            report.assortativity,
            targets.assortativity,
            0.2,
        );
        check(
            "coreness",
            report.coreness as f64,
            targets.coreness as f64,
            0.6 * targets.coreness as f64,
        );
        ValidationReport { outcomes, report }
    }

    /// `true` when every check passed.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }

    /// Number of passing checks.
    pub fn pass_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.pass).count()
    }

    /// Renders an aligned pass/fail table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("metric              measured    target      tol      verdict\n");
        for o in &self.outcomes {
            out.push_str(&format!(
                "{:<18} {:>9.3} {:>9.3} {:>8.3}   {}\n",
                o.metric,
                o.measured,
                o.target,
                o.tolerance,
                if o.pass { "PASS" } else { "FAIL" }
            ));
        }
        out.push_str(&format!(
            "overall: {}/{} checks passed\n",
            self.pass_count(),
            self.outcomes.len()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{build_reference_csr, AS_MAP_2001};
    use inet_generators::{Generator, Gnp};
    use inet_stats::rng::seeded_rng;

    #[test]
    fn reference_map_validates_against_its_own_targets() {
        let mut rng = seeded_rng(1);
        let csr = build_reference_csr(&AS_MAP_2001, &mut rng);
        let v = ValidationReport::run(&csr, &AS_MAP_2001);
        // The Inet-style reference hits tail/degree/paths/assortativity;
        // clustering is its known weak spot, so demand >= 4 of 6.
        assert!(
            v.pass_count() >= 4,
            "only {}/{} passed:\n{}",
            v.pass_count(),
            v.outcomes.len(),
            v.render()
        );
        // gamma specifically must pass.
        assert!(v.outcomes.iter().any(|o| o.metric == "gamma" && o.pass));
    }

    #[test]
    fn er_graph_fails_category_checks() {
        let mut rng = seeded_rng(2);
        let net = Gnp::with_mean_degree(4000, 4.2).generate(&mut rng);
        let (giant, _) = inet_graph::traversal::giant_component(&net.graph.to_csr());
        let v = ValidationReport::run(&giant, &AS_MAP_2001);
        assert!(
            !v.all_pass(),
            "an ER graph must not validate as the Internet"
        );
        // It should fail the heavy-tail check in particular.
        let gamma = v.outcomes.iter().find(|o| o.metric == "gamma").unwrap();
        assert!(!gamma.pass, "ER graph passed the gamma check: {gamma:?}");
    }

    #[test]
    fn unfittable_gamma_yields_finite_fail_not_nan() {
        // A tiny triangle has no power-law tail to fit: the gamma check
        // must come back as a finite-valued FAIL, never NaN.
        let g = Csr::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let v = ValidationReport::run(&g, &AS_MAP_2001);
        for o in &v.outcomes {
            assert!(
                o.measured.is_finite(),
                "{}: measured {} is not finite",
                o.metric,
                o.measured
            );
        }
        let gamma = v.outcomes.iter().find(|o| o.metric == "gamma").unwrap();
        assert!(!gamma.pass);
        assert!(!v.render().contains("NaN"));
    }

    #[test]
    fn render_is_a_table() {
        let mut rng = seeded_rng(3);
        let net = Gnp::new(200, 0.03).generate(&mut rng);
        let v = ValidationReport::run(&net.graph.to_csr(), &AS_MAP_2001);
        let text = v.render();
        assert!(text.contains("verdict"));
        assert!(text.contains("overall:"));
        assert_eq!(text.lines().count(), v.outcomes.len() + 2);
    }
}
