//! Deterministic retry schedules for transient failures.
//!
//! Extracted from the resilience checkpoint store, where retried IO first
//! appeared, and now shared with the scenario service's worker retries.
//! The schedule is capped exponential backoff with **deterministic**
//! jitter: the jitter derives from SplitMix64 of the attempt index — no
//! wall clock, no RNG — so a chaos replay sleeps the exact same schedule
//! every run.

use crate::fence::PanicFence;

/// Retry schedule for transient failures: capped exponential backoff with
/// deterministic jitter (SplitMix64 of the attempt index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1 is always made.
    pub attempts: u32,
    /// Backoff before retry `k` is `base_delay_ms << k`, capped below.
    pub base_delay_ms: u64,
    /// Cap on the exponential term (jitter may add up to 25% on top).
    pub max_delay_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay_ms: 10,
            max_delay_ms: 200,
        }
    }
}

impl RetryPolicy {
    /// The default attempt count with zero sleeping — for tests.
    pub fn no_delay() -> Self {
        RetryPolicy {
            attempts: 4,
            base_delay_ms: 0,
            max_delay_ms: 0,
        }
    }

    /// Backoff in milliseconds after failed attempt `attempt` (0-based):
    /// `min(base << attempt, max)` plus deterministic jitter in
    /// `[0, capped/4]`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16) as u64);
        let capped = exp.min(self.max_delay_ms);
        // Saturating: only reachable with caps near u64::MAX, where the
        // schedule pins to the cap instead of wrapping.
        capped.saturating_add(splitmix64(attempt as u64 + 1) % (capped / 4 + 1))
    }

    /// Sleeps the backoff owed after failed attempt `attempt` (0-based).
    /// No-op when the computed delay is zero.
    pub fn pause(&self, attempt: u32) {
        let ms = self.delay_ms(attempt);
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }

    /// Runs `op` under this schedule until it succeeds or the attempts are
    /// exhausted. Each attempt is panic-fenced: a panic inside `op` is just
    /// a failed attempt (recorded as `attempt panicked: <message>`), not a
    /// crash of the retry loop.
    ///
    /// `op` receives the 0-based attempt index — callers use it as the
    /// scope key of their failpoints so a chaos plan can fail exactly the
    /// first attempt and watch the retry recover. An `Err` return is
    /// retryable; to stop early on a deterministic failure, make `T` itself
    /// a `Result` and return it as `Ok`.
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u64) -> Result<T, String>,
    ) -> Result<T, RetryExhausted> {
        let registry = inet_obs::default_registry();
        let mut last = String::from("no attempt made");
        for attempt in 0..self.attempts.max(1) {
            if attempt > 0 {
                // Telemetry: retries beyond the first try are counted; the
                // first attempt is normal operation, not a retry.
                registry.counter("inet_retry_attempts_total", &[]).inc();
                self.pause(attempt - 1);
            }
            match PanicFence::run(|| op(attempt as u64)) {
                Ok(Ok(value)) => return Ok(value),
                Ok(Err(e)) => last = e,
                Err(msg) => last = format!("attempt panicked: {msg}"),
            }
        }
        registry.counter("inet_retry_exhausted_total", &[]).inc();
        Err(RetryExhausted {
            attempts: self.attempts.max(1),
            last_error: last,
        })
    }
}

/// Every attempt of a [`RetryPolicy::run`] loop failed.
///
/// Displays as `<last error> (after <N> attempts)` — the format the
/// checkpoint store has always surfaced, now shared by every retried
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryExhausted {
    /// How many attempts were made (the policy's count, at least 1).
    pub attempts: u32,
    /// The failure message of the last attempt.
    pub last_error: String,
}

impl std::fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (after {} attempts)", self.last_error, self.attempts)
    }
}

impl std::error::Error for RetryExhausted {}

/// SplitMix64 — the deterministic jitter source (no `rand` dependency).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_is_deterministic_and_capped() {
        let p = RetryPolicy::default();
        for attempt in 0..20 {
            let a = p.delay_ms(attempt);
            let b = p.delay_ms(attempt);
            assert_eq!(a, b, "jitter must be deterministic");
            assert!(
                a <= p.max_delay_ms + p.max_delay_ms / 4,
                "attempt {attempt}: delay {a} above cap+jitter"
            );
        }
    }

    #[test]
    fn delays_grow_until_the_cap() {
        let p = RetryPolicy {
            attempts: 8,
            base_delay_ms: 10,
            max_delay_ms: 80,
        };
        // The exponential term doubles until capped at 80.
        assert!(p.delay_ms(0) >= 10);
        assert!(p.delay_ms(3) >= 80);
        assert!(p.delay_ms(17) <= 80 + 80 / 4, "huge attempts stay capped");
    }

    #[test]
    fn no_delay_never_sleeps() {
        let p = RetryPolicy::no_delay();
        for attempt in 0..8 {
            assert_eq!(p.delay_ms(attempt), 0);
        }
    }

    #[test]
    fn run_returns_first_success() {
        let p = RetryPolicy::no_delay();
        let mut calls = 0;
        let got = p.run(|attempt| {
            calls += 1;
            Ok::<u64, String>(attempt)
        });
        assert_eq!(got, Ok(0));
        assert_eq!(calls, 1);
    }

    #[test]
    fn run_retries_failures_then_succeeds() {
        let p = RetryPolicy::no_delay();
        let got = p.run(|attempt| {
            if attempt < 2 {
                Err(format!("transient {attempt}"))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(got, Ok(2));
    }

    #[test]
    fn run_exhaustion_reports_the_last_error_and_count() {
        let p = RetryPolicy::no_delay();
        let got = p.run(|attempt| -> Result<(), String> { Err(format!("boom {attempt}")) });
        let err = got.expect_err("all attempts fail");
        assert_eq!(err.attempts, 4);
        assert_eq!(err.last_error, "boom 3");
        assert_eq!(err.to_string(), "boom 3 (after 4 attempts)");
    }

    #[test]
    fn run_fences_attempt_panics() {
        let p = RetryPolicy::no_delay();
        let got = p.run(|attempt| {
            if attempt == 0 {
                #[allow(clippy::panic)]
                {
                    panic!("first attempt dies");
                }
            }
            Ok::<u64, String>(attempt)
        });
        assert_eq!(got, Ok(1), "a panicked attempt is just a failed attempt");
        let all_panic = p.run(|_| -> Result<(), String> {
            #[allow(clippy::panic)]
            {
                panic!("always")
            }
        });
        let err = all_panic.expect_err("exhausted");
        assert_eq!(
            err.to_string(),
            "attempt panicked: always (after 4 attempts)"
        );
    }

    #[test]
    fn jitter_sleep_sequence_is_exactly_reproducible() {
        // The SplitMix64 jitter contract pinned to exact values: the
        // schedule is a pure function of (policy, attempt), so a chaos
        // replay sleeps these exact milliseconds, forever. If this test
        // breaks, checkpoint-retry replay timing has silently changed.
        let p = RetryPolicy::default(); // base 10, max 200
        let schedule: Vec<u64> = (0..6).map(|a| p.delay_ms(a)).collect();
        assert_eq!(schedule, vec![12, 24, 44, 93, 200, 232]);
        let q = RetryPolicy {
            attempts: 8,
            base_delay_ms: 5,
            max_delay_ms: 40,
        };
        let schedule: Vec<u64> = (0..6).map(|a| q.delay_ms(a)).collect();
        assert_eq!(schedule, vec![6, 11, 23, 50, 41, 41]);
        // The exponent clamp at 16 keeps huge attempt indices finite.
        assert_eq!(p.delay_ms(16), 233);
        assert_eq!(p.delay_ms(17), 204);
        assert_eq!(p.delay_ms(63), 240);
    }

    #[test]
    fn backoff_stays_within_the_documented_bounds() {
        // delay(attempt) ∈ [capped, capped + capped/4] where
        // capped = min(base << min(attempt,16), max) — for every attempt,
        // including the shift-overflow and saturation edges.
        let policies = [
            RetryPolicy::default(),
            RetryPolicy {
                attempts: 4,
                base_delay_ms: 1,
                max_delay_ms: 3,
            },
            RetryPolicy {
                attempts: 4,
                base_delay_ms: u64::MAX / 2,
                max_delay_ms: u64::MAX,
            },
        ];
        for p in policies {
            for attempt in [0u32, 1, 2, 3, 15, 16, 17, 31, 63, u32::MAX] {
                let exp = p
                    .base_delay_ms
                    .saturating_mul(1u64 << attempt.min(16) as u64);
                let capped = exp.min(p.max_delay_ms);
                let got = p.delay_ms(attempt);
                assert!(
                    got >= capped && got <= capped.saturating_add(capped / 4),
                    "base={} max={} attempt={attempt}: {got} outside [{capped}, {}]",
                    p.base_delay_ms,
                    p.max_delay_ms,
                    capped.saturating_add(capped / 4)
                );
            }
        }
    }

    #[test]
    fn zero_attempt_policy_still_tries_once() {
        let p = RetryPolicy {
            attempts: 0,
            base_delay_ms: 0,
            max_delay_ms: 0,
        };
        assert_eq!(p.run(|_| Ok::<u8, String>(9)), Ok(9));
        let err = p
            .run(|_| -> Result<(), String> { Err("x".into()) })
            .expect_err("fails");
        assert_eq!(err.attempts, 1);
    }
}
