//! Cooperative cancellation for long-running computations.
//!
//! A [`CancelToken`] is a cheap, cloneable handle around a shared atomic
//! flag. Producers of long-running work (sweep cells, metric kernels, the
//! work-stealing pool) poll [`CancelToken::is_cancelled`] at natural batch
//! boundaries — between sweep cells, between kernels, between pool chunks —
//! and wind down *cooperatively*: in-flight state is flushed, partial
//! results stay valid, and nothing is torn mid-write.
//!
//! Cancellation latency is therefore bounded by the largest unit of work
//! between two polls (one sweep cell, one kernel, one pool chunk), which is
//! exactly the granularity at which the toolkit's checkpoints commit — a
//! cancelled run can always resume from its last committed unit.
//!
//! Tokens can additionally be **linked** to a `'static` [`AtomicBool`] via
//! [`CancelToken::linked`]. This is the bridge to asynchronous signal
//! handlers (a SIGINT handler may only touch static atomics): the handler
//! flips the static flag, and every token linked to it observes the
//! cancellation on its next poll, without the handler ever needing a
//! reference to the token itself.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A computation was cancelled cooperatively before it completed.
///
/// Carried by `Result::Err` on cancellable entry points; the partial work
/// committed before the poll that observed the cancellation remains valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Cheap, cloneable cancellation handle shared between a controller (the
/// CLI's signal handler, a test) and the workers it may need to stop.
///
/// All clones of a token observe the same flag: cancelling any clone
/// cancels them all. The default token ([`CancelToken::new`] /
/// `CancelToken::default()`) is never cancelled until [`cancel`] is called
/// on it, so passing a fresh token preserves legacy run-to-completion
/// behavior exactly.
///
/// [`cancel`]: CancelToken::cancel
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// Flag owned by this token family (all clones share it).
    flag: Arc<AtomicBool>,
    /// Optional external flag — typically a static flipped by a signal
    /// handler — OR-ed into every poll.
    external: Option<&'static AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that also observes `external`: the token reports cancelled
    /// when *either* its own flag or `external` is set. Used to bridge
    /// signal handlers, which can only touch static atomics.
    pub fn linked(external: &'static AtomicBool) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            external: Some(external),
        }
    }

    /// Requests cancellation. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Polls the token. `true` once [`cancel`] has been called on any clone
    /// or the linked external flag has been set.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
            || self
                .external
                .map(|e| e.load(Ordering::SeqCst))
                .unwrap_or(false)
    }

    /// `Err(Cancelled)` once the token is cancelled, `Ok(())` otherwise.
    /// Convenience for `?`-style early exit at batch boundaries.
    pub fn checkpoint(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_not_cancelled() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.checkpoint(), Ok(()));
    }

    #[test]
    fn cancel_is_visible_to_all_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert!(c.is_cancelled());
        assert_eq!(t.checkpoint(), Err(Cancelled));
        // Idempotent.
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn linked_token_observes_the_external_flag() {
        static FLAG: AtomicBool = AtomicBool::new(false);
        let t = CancelToken::linked(&FLAG);
        let c = t.clone();
        assert!(!t.is_cancelled());
        FLAG.store(true, Ordering::SeqCst);
        assert!(t.is_cancelled(), "external flag must cancel the token");
        assert!(c.is_cancelled(), "clones keep the link");
        FLAG.store(false, Ordering::SeqCst);
        assert!(!t.is_cancelled(), "own flag was never set");
        c.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancelled_error_formats() {
        assert_eq!(Cancelled.to_string(), "operation cancelled");
    }
}
