//! Unified task-execution substrate for the Internet topology toolkit.
//!
//! Before this crate, five layers — the metrics engine's fused sweep, the
//! robust kernel runner, the resilience cell sweep, pipeline stages, and
//! the scenario service's worker pool — each carried their own copies of
//! the same machinery: a panic fence, a deadline check, a retry loop, a
//! thread pool. `inet-exec` owns that vocabulary in one place:
//!
//! * [`parallel`] — the deterministic work-stealing chunk pool (fixed chunk
//!   grid, in-order merge: bit-identical results for any thread count);
//! * [`cancel`] — cooperative [`CancelToken`] / [`Cancelled`] plumbing;
//! * [`fence`] — [`PanicFence`], the single panic-containment choke point;
//! * [`deadline`] — soft budgets ([`StopWatch`]) that annotate overruns and
//!   hard points-in-time ([`Deadline`]) that supervisors cancel against;
//! * [`retry`] — [`RetryPolicy`], capped exponential backoff with
//!   SplitMix64 deterministic jitter, and its [`RetryExhausted`] error;
//! * [`task`] — the [`Task`] / [`Executor`] API and [`run_fenced`], which
//!   routes every fenced unit of work through the `exec.task` failpoint.
//!
//! The crate adds **no scheduling or numeric behavior of its own**: ports
//! from the old per-layer copies are bit-identical at any thread count, and
//! every layer keeps its layer-specific failpoint alongside the shared
//! `exec.task` one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod deadline;
pub mod fence;
pub mod parallel;
pub mod retry;
pub mod task;

pub use cancel::{CancelToken, Cancelled};
pub use deadline::{Deadline, Reading, StopWatch};
pub use fence::PanicFence;
pub use retry::{RetryExhausted, RetryPolicy};
pub use task::{run_fenced, Executor, Task, TaskError};
