//! The task vocabulary: named, scope-keyed units of fenced work.
//!
//! Every layer of the toolkit ultimately runs the same shape of thing — "a
//! unit of work that may panic, may be faulted by the chaos suite, and must
//! fail as a value, not a crash". A [`Task`] names that unit ([`Task::layer`]
//! says which subsystem, [`Task::scope`] which instance: kernel index, cell
//! index, stage index, retry attempt), and [`run_fenced`] executes it behind
//! the shared [`PanicFence`] and the `exec.task` failpoint.
//!
//! The `exec.task` failpoint is scope-keyed like every other failpoint, so a
//! chaos plan can fail one specific kernel/cell/stage/attempt regardless of
//! which thread happens to run it. It fires **inside** the fence: an
//! injected panic is contained exactly like a real one. Layer-specific
//! failpoints (`metrics.kernel`, `sweep.cell`, `pipeline.stage`,
//! `service.worker`) keep working — they run inside the closure the caller
//! passes, so both old and new fault plans reach the same code.
//!
//! [`Executor`] bundles a thread count and a [`CancelToken`] with the fence,
//! giving callers one handle for "run this batch deterministically, fenced,
//! cancellable" — the pool underneath is [`crate::parallel`], unchanged.

use crate::cancel::{CancelToken, Cancelled};
use crate::fence::PanicFence;
use crate::parallel;
use std::ops::Range;

/// A named, scope-keyed unit of fenced work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Which subsystem owns the task (e.g. `"metrics.kernel"`,
    /// `"sweep.cell"`, `"pipeline.stage"`, `"service.worker"`). Used for
    /// messages; the chaos scope key is `scope`.
    pub layer: &'static str,
    /// Deterministic instance key: kernel index, cell index, stage index,
    /// or retry attempt. Also the scope key of the `exec.task` failpoint,
    /// so injection is thread-schedule-independent.
    pub scope: u64,
}

impl Task {
    /// A task owned by `layer` with deterministic instance key `scope`.
    pub fn new(layer: &'static str, scope: u64) -> Self {
        Task { layer, scope }
    }
}

/// Why a fenced task did not produce a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The `exec.task` failpoint fired with an `Error` action.
    Fault(inet_fault::FaultError),
    /// The task (or an injected `Panic` action) panicked; the fence caught
    /// it and carries the message.
    Panicked(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Fault(e) => write!(f, "{e}"),
            TaskError::Panicked(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Runs `f` as `task`: behind the shared [`PanicFence`], with the
/// `exec.task` failpoint consulted (scope = [`Task::scope`]) inside the
/// fence. This is the single choke point every ported layer funnels
/// through, so the telemetry recorded here covers the whole workspace:
/// an `inet-obs` span named after the layer, the
/// `inet_task_latency_us{layer=...}` histogram, and the
/// `inet_task_panics_total{layer=...}` counter for fence-caught panics.
/// Telemetry observes wall time only — results are untouched, and the
/// `obs.record` failpoint inside the recorders proves a faulted (even
/// panicking) recorder costs at most its own record.
pub fn run_fenced<T>(task: &Task, f: impl FnOnce() -> T) -> Result<T, TaskError> {
    let span = inet_obs::span::enter(task.layer, task.scope);
    let started = std::time::Instant::now();
    let out = match PanicFence::run(|| inet_fault::check("exec.task", task.scope).map(|()| f())) {
        Ok(Ok(value)) => Ok(value),
        Ok(Err(e)) => Err(TaskError::Fault(e)),
        Err(msg) => Err(TaskError::Panicked(msg)),
    };
    drop(span);
    let registry = inet_obs::default_registry();
    registry
        .histogram("inet_task_latency_us", &[("layer", task.layer)])
        .observe(started.elapsed().as_micros() as u64);
    if matches!(out, Err(TaskError::Panicked(_))) {
        registry
            .counter("inet_task_panics_total", &[("layer", task.layer)])
            .inc();
    }
    out
}

/// A thread count and a [`CancelToken`] bundled over the deterministic
/// work-stealing pool.
///
/// The executor adds no scheduling of its own — results are bit-identical
/// to calling [`crate::parallel`] directly, which is exactly the point: one
/// handle, same grid, same merge order, any thread count.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    threads: usize,
    cancel: CancelToken,
}

impl Executor {
    /// An executor fanning out over up to `threads` workers with a fresh
    /// (never-cancelled) token.
    pub fn new(threads: usize) -> Self {
        Executor {
            threads,
            cancel: CancelToken::new(),
        }
    }

    /// An executor whose pool polls `cancel` before claiming each chunk.
    pub fn with_cancel(threads: usize, cancel: CancelToken) -> Self {
        Executor { threads, cancel }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The cancel token the pool polls.
    pub fn cancel(&self) -> &CancelToken {
        &self.cancel
    }

    /// [`run_fenced`] under this executor's identity — convenience so call
    /// sites hold one handle.
    pub fn run<T>(&self, task: &Task, f: impl FnOnce() -> T) -> Result<T, TaskError> {
        run_fenced(task, f)
    }

    /// [`parallel::fanout_ordered`] with this executor's thread count.
    /// Each fan-out records an `exec.fanout` span (scope = item count) and
    /// the `inet_exec_fanout_us` batch-wall-time histogram — one record
    /// per batch, never per item.
    pub fn map_ordered<S, T, FS, FW>(&self, len: usize, make_scratch: FS, work: FW) -> Vec<T>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        FW: Fn(&mut S, Range<usize>) -> T + Sync,
    {
        let _span = inet_obs::span::enter("exec.fanout", len as u64);
        let started = std::time::Instant::now();
        let out = parallel::fanout_ordered(len, self.threads, make_scratch, work);
        inet_obs::default_registry()
            .histogram("inet_exec_fanout_us", &[])
            .observe(started.elapsed().as_micros() as u64);
        out
    }

    /// [`parallel::try_fanout_ordered`] with this executor's thread count
    /// and cancel token. Records the same per-batch telemetry as
    /// [`Executor::map_ordered`].
    pub fn try_map_ordered<S, T, FS, FW>(
        &self,
        len: usize,
        make_scratch: FS,
        work: FW,
    ) -> Result<Vec<T>, Cancelled>
    where
        T: Send,
        FS: Fn() -> S + Sync,
        FW: Fn(&mut S, Range<usize>) -> T + Sync,
    {
        let _span = inet_obs::span::enter("exec.fanout", len as u64);
        let started = std::time::Instant::now();
        let out = parallel::try_fanout_ordered(len, self.threads, &self.cancel, make_scratch, work);
        inet_obs::default_registry()
            .histogram("inet_exec_fanout_us", &[])
            .observe(started.elapsed().as_micros() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fenced_task_returns_its_value() {
        let t = Task::new("test.layer", 0);
        assert_eq!(run_fenced(&t, || 7u32), Ok(7));
    }

    #[test]
    fn fenced_task_contains_panics() {
        let t = Task::new("test.layer", 1);
        let got = run_fenced(&t, || -> u32 { panic!("kernel died") });
        assert_eq!(got, Err(TaskError::Panicked("kernel died".to_string())));
        // The calling thread is healthy afterwards.
        assert_eq!(run_fenced(&t, || 1u32), Ok(1));
    }

    #[test]
    fn task_error_displays_the_raw_message() {
        let e = TaskError::Panicked("boom".to_string());
        assert_eq!(e.to_string(), "boom");
    }

    #[test]
    fn executor_map_matches_direct_pool_calls() {
        let items: Vec<u64> = (0..500).map(|i| i * 3 % 31).collect();
        let direct =
            parallel::fanout_ordered(items.len(), 3, || (), |_, r| items[r].iter().sum::<u64>());
        let exec = Executor::new(3);
        let via = exec.map_ordered(items.len(), || (), |_, r| items[r].iter().sum::<u64>());
        assert_eq!(via, direct);
        assert_eq!(exec.threads(), 3);
    }

    #[test]
    fn cancelled_executor_stops_the_pool() {
        let exec = Executor::with_cancel(2, CancelToken::new());
        exec.cancel().cancel();
        let got = exec.try_map_ordered(100, || (), |_, _| 0u8);
        assert_eq!(got, Err(Cancelled));
    }

    #[test]
    fn fresh_executor_completes_the_pool() {
        let exec = Executor::with_cancel(2, CancelToken::new());
        let got = exec.try_map_ordered(10, || (), |_, r| r.len());
        assert!(got.is_ok());
    }
}
