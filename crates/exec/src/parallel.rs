//! Deterministic work-stealing fan-out over index ranges.
//!
//! Metrics kernels process items (nodes, BFS sources, edges) that vary
//! wildly in cost on heavy-tailed graphs — a hub's neighbor scan can be
//! orders of magnitude more work than a fringe node's. Static even-split
//! chunking leaves threads idle behind whichever chunk drew the hubs, so
//! this module steals work dynamically instead: items are cut into a
//! **fixed chunk grid** that depends only on the item count, and worker
//! threads claim chunks from a shared [`AtomicUsize`] cursor.
//!
//! Because the grid never changes with the thread count, and per-chunk
//! results are merged **in chunk order** after all workers finish, every
//! output — including floating-point accumulations, whose value depends on
//! summation order — is bit-identical for any `threads ≥ 1`. The
//! single-thread path runs the same chunks in the same order inline, so it
//! produces the same bits too.
//!
//! Worker panics are caught per chunk and re-raised on the calling thread
//! with the failing item range in the message, instead of an anonymous
//! "worker panicked".

use crate::cancel::{CancelToken, Cancelled};
use crate::fence::PanicFence;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the number of chunks in a grid. Small enough that
/// per-chunk partial buffers stay cheap, large enough that work stealing
/// can balance hub-heavy chunks across any realistic core count.
const MAX_CHUNKS: usize = 64;

/// Default worker count: the machine's available parallelism, clamped to
/// at least 1 when the capacity cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// Chunk length of the fixed grid for `len` items. Depends only on `len`.
pub fn chunk_size(len: usize) -> usize {
    len.div_ceil(MAX_CHUNKS).max(1)
}

/// The fixed chunk grid for `len` items: consecutive, non-overlapping
/// ranges covering `0..len`, at most `MAX_CHUNKS` of them. Empty for
/// `len == 0`.
pub fn chunk_grid(len: usize) -> Vec<Range<usize>> {
    let size = chunk_size(len);
    (0..len.div_ceil(size))
        .map(|c| c * size..((c + 1) * size).min(len))
        .collect()
}

/// Runs `work` over every chunk of the fixed grid for `len` items, fanning
/// chunks out across up to `threads` work-stealing workers, and returns the
/// per-chunk results **in chunk order**.
///
/// Each worker builds one scratch value with `make_scratch` and reuses it
/// for every chunk it claims, so expensive per-worker buffers (BFS queues,
/// distance arrays) are allocated `O(threads)` times, not `O(chunks)`.
///
/// The chunk grid and the returned order depend only on `len`, never on
/// `threads`, so callers that fold the returned partials in order get
/// bit-identical results for any thread count.
///
/// # Panics
///
/// If `work` panics, the panic is propagated on the calling thread with a
/// message naming the item range that failed.
pub fn fanout_ordered<S, T, FS, FW>(
    len: usize,
    threads: usize,
    make_scratch: FS,
    work: FW,
) -> Vec<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, Range<usize>) -> T + Sync,
{
    // Without a token no worker ever stops early, so the Err arm (empty
    // default) is unreachable.
    fanout_impl(len, threads, None, make_scratch, work).unwrap_or_default()
}

/// [`fanout_ordered`] with cooperative cancellation: workers poll `token`
/// **before claiming each chunk** and stop claiming once it is cancelled,
/// so cancel latency is bounded by one chunk of work.
///
/// Returns `Err(Cancelled)` if any chunk was left unprocessed because of
/// the cancellation. If the token fires after every chunk has already been
/// claimed, the complete, bit-identical result is returned as `Ok` — a
/// finished computation is never discarded.
pub fn try_fanout_ordered<S, T, FS, FW>(
    len: usize,
    threads: usize,
    token: &CancelToken,
    make_scratch: FS,
    work: FW,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, Range<usize>) -> T + Sync,
{
    fanout_impl(len, threads, Some(token), make_scratch, work)
}

/// Shared work-stealing core. With `token: None` the claim loop never
/// stops early and the result is always `Ok`.
fn fanout_impl<S, T, FS, FW>(
    len: usize,
    threads: usize,
    token: Option<&CancelToken>,
    make_scratch: FS,
    work: FW,
) -> Result<Vec<T>, Cancelled>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, Range<usize>) -> T + Sync,
{
    let grid = chunk_grid(len);
    let threads = threads.max(1).min(grid.len().max(1));
    let cancelled = || token.map(CancelToken::is_cancelled).unwrap_or(false);
    if threads <= 1 || grid.len() <= 1 {
        let mut scratch = make_scratch();
        let mut parts = Vec::with_capacity(grid.len());
        for range in grid {
            if cancelled() {
                return Err(Cancelled);
            }
            parts.push(run_chunk(&work, &mut scratch, range));
        }
        return Ok(parts);
    }

    type Payload = Box<dyn std::any::Any + Send + 'static>;
    type WorkerResult<T> = Result<Vec<(usize, T)>, (Range<usize>, Payload)>;

    let cursor = AtomicUsize::new(0);
    let outcomes: Vec<WorkerResult<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let grid = &grid;
                let make_scratch = &make_scratch;
                let work = &work;
                scope.spawn(move || {
                    let mut scratch = make_scratch();
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        if cancelled() {
                            return Ok(done);
                        }
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(range) = grid.get(c).cloned() else {
                            return Ok(done);
                        };
                        let attempt =
                            catch_unwind(AssertUnwindSafe(|| work(&mut scratch, range.clone())));
                        match attempt {
                            Ok(t) => done.push((c, t)),
                            Err(payload) => return Err((range, payload)),
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|payload| resume_unwind(payload)))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..grid.len()).map(|_| None).collect();
    let mut failure: Option<(Range<usize>, Payload)> = None;
    for outcome in outcomes {
        match outcome {
            Ok(parts) => {
                for (c, t) in parts {
                    slots[c] = Some(t);
                }
            }
            // Report the earliest failing range so the message is
            // deterministic when several workers panic at once.
            Err(f) => {
                failure = Some(match failure.take() {
                    Some(old) if old.0.start <= f.0.start => old,
                    _ => f,
                })
            }
        }
    }
    // Not a new failure mode: re-raises the caught worker panic with the
    // failing range attached, for the caller's containment layer.
    #[allow(clippy::panic)]
    if let Some((range, payload)) = failure {
        panic!(
            "parallel worker panicked on items {}..{}: {}",
            range.start,
            range.end,
            PanicFence::message(&*payload)
        );
    }
    let mut parts = Vec::with_capacity(slots.len());
    for slot in slots {
        match slot {
            Some(t) => parts.push(t),
            // Only reachable under cancellation: every chunk is otherwise
            // claimed by exactly one worker.
            None => return Err(Cancelled),
        }
    }
    Ok(parts)
}

/// [`fanout_ordered`] followed by an in-order fold of the chunk partials.
/// Returns `None` when `len == 0` (no chunks). The fold runs on the calling
/// thread in chunk order, so float accumulations stay bit-identical for any
/// thread count.
pub fn fanout_reduce<S, T, FS, FW, FM>(
    len: usize,
    threads: usize,
    make_scratch: FS,
    work: FW,
    mut fold: FM,
) -> Option<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    FW: Fn(&mut S, Range<usize>) -> T + Sync,
    FM: FnMut(T, T) -> T,
{
    fanout_ordered(len, threads, make_scratch, work)
        .into_iter()
        .reduce(&mut fold)
}

/// Single-threaded chunk execution with the same range-naming panic
/// message as the threaded path.
fn run_chunk<S, T, FW>(work: &FW, scratch: &mut S, range: Range<usize>) -> T
where
    FW: Fn(&mut S, Range<usize>) -> T,
{
    match catch_unwind(AssertUnwindSafe(|| work(scratch, range.clone()))) {
        Ok(t) => t,
        // Same contract as the threaded path: re-raise with the range.
        #[allow(clippy::panic)]
        Err(payload) => panic!(
            "parallel worker panicked on items {}..{}: {}",
            range.start,
            range.end,
            PanicFence::message(&*payload)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_range_without_overlap() {
        for len in [0usize, 1, 5, 63, 64, 65, 1000, 12345] {
            let grid = chunk_grid(len);
            assert!(grid.len() <= MAX_CHUNKS, "len {len}: {} chunks", grid.len());
            let mut next = 0usize;
            for r in &grid {
                assert_eq!(r.start, next, "len {len}");
                assert!(r.end > r.start, "len {len}: empty chunk");
                next = r.end;
            }
            assert_eq!(next, len, "len {len}: grid must cover 0..len");
        }
    }

    #[test]
    fn grid_is_independent_of_thread_count() {
        // The grid is a pure function of len — this is what makes merged
        // float sums bit-identical across thread counts.
        assert_eq!(chunk_grid(777), chunk_grid(777));
    }

    #[test]
    fn ordered_results_match_serial_for_any_thread_count() {
        let items: Vec<u64> = (0..1000u64).map(|i| i * i % 97).collect();
        let expect: Vec<u64> = chunk_grid(items.len())
            .into_iter()
            .map(|r| items[r].iter().sum())
            .collect();
        for threads in [1, 2, 3, 7, 16] {
            let got = fanout_ordered(
                items.len(),
                threads,
                || 0u64,
                |calls, r| {
                    *calls += 1;
                    items[r].iter().sum::<u64>()
                },
            );
            assert_eq!(got, expect, "threads {threads}");
        }
    }

    #[test]
    fn reduce_folds_in_chunk_order() {
        // Collect chunk start indices through the fold; order must be the
        // grid order regardless of thread count.
        for threads in [1, 4] {
            let folded = fanout_reduce(
                300,
                threads,
                || (),
                |_, r| vec![r.start],
                |mut a, b| {
                    a.extend(b);
                    a
                },
            )
            .expect("non-empty");
            let expect: Vec<usize> = chunk_grid(300).into_iter().map(|r| r.start).collect();
            assert_eq!(folded, expect, "threads {threads}");
        }
    }

    #[test]
    fn empty_input_yields_no_chunks() {
        let got: Vec<u32> = fanout_ordered(0, 4, || (), |_, _| unreachable!());
        assert!(got.is_empty());
        assert_eq!(fanout_reduce(0, 4, || (), |_, _| 1u32, |a, b| a + b), None);
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // With 1 thread every chunk shares one scratch, so the counter sees
        // every chunk.
        let counts = fanout_ordered(
            640,
            1,
            || 0usize,
            |seen, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts.last().copied(), Some(chunk_grid(640).len()));
    }

    #[test]
    fn worker_panic_names_the_failing_range() {
        for threads in [1, 3] {
            let result = catch_unwind(AssertUnwindSafe(|| {
                fanout_ordered(
                    100,
                    threads,
                    || (),
                    |_, r: Range<usize>| {
                        if r.contains(&42) {
                            panic!("boom on purpose");
                        }
                        0u8
                    },
                )
            }));
            let payload = result.expect_err("must propagate the panic");
            let msg = PanicFence::message(&*payload);
            assert!(
                msg.contains("parallel worker panicked on items") && msg.contains("boom"),
                "threads {threads}: message was {msg:?}"
            );
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
