//! Soft and hard deadlines for long-running tasks.
//!
//! The toolkit distinguishes two budgets:
//!
//! * a **soft deadline** ([`StopWatch`]) never interrupts work — the task
//!   runs to completion so its numbers stay deterministic, and the watch
//!   merely reports whether the budget was overrun (the metrics layer turns
//!   an overrun into a `Degraded` status annotation);
//! * a **hard deadline** ([`Deadline`]) is a point in time after which a
//!   supervisor (the service reaper) fires a cancel token; the task then
//!   winds down cooperatively at its next poll.
//!
//! Keeping both in one module makes the semantics greppable: nothing in the
//! workspace kills a thread, ever — deadlines either annotate or cancel.

use std::time::{Duration, Instant};

/// What a [`StopWatch`] saw when it was read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// Elapsed wall-clock milliseconds, truncated.
    pub millis: u64,
    /// `Some(deadline_ms)` when a soft deadline was configured and the
    /// elapsed time exceeds it.
    pub overrun: Option<u64>,
}

/// Wall-clock watch with an optional soft deadline.
///
/// The overrun check compares the **un-truncated** elapsed duration against
/// the deadline, so a sub-millisecond task still overruns a 0 ms deadline —
/// the contract the metrics battery's `Degraded` annotation relies on.
#[derive(Debug, Clone, Copy)]
pub struct StopWatch {
    start: Instant,
    soft_deadline_ms: Option<u64>,
}

impl StopWatch {
    /// Starts the watch now. `soft_deadline_ms: None` disables the overrun
    /// check ([`Reading::overrun`] stays `None` forever).
    pub fn start(soft_deadline_ms: Option<u64>) -> Self {
        StopWatch {
            start: Instant::now(),
            soft_deadline_ms,
        }
    }

    /// Reads elapsed time and the overrun verdict from a single clock
    /// sample, so the truncated `millis` and the overrun decision can never
    /// disagree about which instant they describe.
    pub fn read(&self) -> Reading {
        let elapsed = self.start.elapsed();
        let overrun = self
            .soft_deadline_ms
            .filter(|&d| elapsed.as_secs_f64() * 1000.0 > d as f64);
        Reading {
            millis: elapsed.as_millis() as u64,
            overrun,
        }
    }
}

/// A hard deadline: a fixed point in time to compare against.
///
/// Carries no enforcement of its own — a supervisor polls
/// [`Deadline::is_expired`] and fires a [`crate::CancelToken`] when it
/// trips, and [`Deadline::remaining`] bounds how long that supervisor needs
/// to park between polls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `ms` milliseconds from now.
    pub fn after_millis(ms: u64) -> Self {
        Deadline {
            at: Instant::now() + Duration::from_millis(ms),
        }
    }

    /// Whether the deadline has passed.
    pub fn is_expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry; zero once expired (never negative).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watch_without_deadline_never_overruns() {
        let w = StopWatch::start(None);
        std::thread::sleep(Duration::from_millis(2));
        let r = w.read();
        assert_eq!(r.overrun, None);
    }

    #[test]
    fn zero_soft_deadline_overruns_even_sub_millisecond() {
        // The un-truncated comparison: any positive elapsed time beats a
        // 0 ms budget, even when the truncated millis reads 0.
        let w = StopWatch::start(Some(0));
        let r = w.read();
        assert_eq!(r.overrun, Some(0));
    }

    #[test]
    fn generous_soft_deadline_reads_ok() {
        let w = StopWatch::start(Some(60_000));
        let r = w.read();
        assert_eq!(r.overrun, None);
        assert!(r.millis < 60_000);
    }

    #[test]
    fn elapsed_watch_reports_the_overrun_deadline() {
        let w = StopWatch::start(Some(1));
        std::thread::sleep(Duration::from_millis(5));
        let r = w.read();
        assert_eq!(r.overrun, Some(1));
        assert!(r.millis >= 1, "millis {}", r.millis);
    }

    #[test]
    fn deadline_fires_after_its_duration() {
        let d = Deadline::after_millis(1);
        assert!(d.remaining() <= Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(d.is_expired());
        assert_eq!(d.remaining(), Duration::ZERO, "never negative");
    }

    #[test]
    fn distant_deadline_is_not_expired() {
        let d = Deadline::after_millis(60_000);
        assert!(!d.is_expired());
        assert!(d.remaining() > Duration::from_secs(50));
    }
}
