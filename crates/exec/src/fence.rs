//! Panic containment with readable messages.
//!
//! Every layer of the toolkit that runs untrusted-cost work (metric
//! kernels, sweep cells, pipeline stages, service workers, connection
//! handlers) must survive a panic in that work: one poisoned task may not
//! take down its siblings, the daemon, or a checkpointed sweep. Before
//! `inet-exec` each layer carried its own `catch_unwind` + payload
//! formatting; [`PanicFence`] is the single shared implementation.
//!
//! A fence converts the opaque `Box<dyn Any>` panic payload into a plain
//! `String` at the catch site, so callers only ever deal in `Result` values
//! and never re-raise by accident.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Unit struct namespacing the fence entry points.
///
/// Stateless by design: a fence has no configuration, and keeping it a
/// type (rather than free functions) gives call sites a greppable name —
/// `PanicFence::run(...)` — wherever containment happens.
pub struct PanicFence;

impl PanicFence {
    /// Runs `f`, catching any panic and returning its message as `Err`.
    ///
    /// The `AssertUnwindSafe` is sound for the toolkit's call sites: every
    /// caller treats an `Err` as a terminal failure of the fenced unit and
    /// either discards the captured state or replaces it wholesale (a
    /// failed kernel reports `Failed`, a failed cell is recorded and
    /// resampled, a failed job is retried from its journal).
    pub fn run<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        catch_unwind(AssertUnwindSafe(f)).map_err(|payload| Self::message(&*payload))
    }

    /// Best-effort extraction of a human-readable panic message from a
    /// caught payload. `&str` and `String` payloads (everything `panic!`
    /// produces) come through verbatim; anything else becomes
    /// `"non-string panic payload"`.
    pub fn message(payload: &(dyn Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_value_passes_through() {
        assert_eq!(PanicFence::run(|| 42), Ok(42));
    }

    #[test]
    fn str_panic_is_contained_with_its_message() {
        let got = PanicFence::run(|| -> u8 { panic!("boom") });
        assert_eq!(got, Err("boom".to_string()));
    }

    #[test]
    fn formatted_panic_is_contained_with_its_message() {
        let n = 7;
        let got = PanicFence::run(|| -> u8 { panic!("boom {n}") });
        assert_eq!(got, Err("boom 7".to_string()));
    }

    #[test]
    fn non_string_payload_gets_placeholder() {
        let got = PanicFence::run(|| -> u8 { std::panic::panic_any(13u32) });
        assert_eq!(got, Err("non-string panic payload".to_string()));
    }

    #[test]
    fn fence_does_not_leak_into_siblings() {
        // A contained panic leaves the thread healthy for the next task.
        let _ = PanicFence::run(|| -> u8 { panic!("first") });
        assert_eq!(PanicFence::run(|| 1u8), Ok(1));
    }
}
