//! Bit-identity of [`inet_exec::Executor`] fan-outs across thread counts.
//!
//! The work-stealing pool under the executor uses a fixed chunk grid that
//! depends only on the item count and merges partials in chunk order, so any
//! float-producing workload must come out **bit-identical** — every mantissa
//! bit — for any `threads ≥ 1`. These properties pin that contract directly
//! on the executor API, independent of the metrics layer's own suite.

use inet_exec::{CancelToken, Executor};
use proptest::prelude::*;

const THREADS: [usize; 3] = [1, 2, 7];

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Non-associative float workload: per-item cost varies with the index so
/// chunks carry uneven work and steal order differs between runs.
fn knead(i: usize, salt: f64) -> f64 {
    let mut acc = salt + i as f64;
    for k in 1..=(i % 23 + 3) {
        acc = (acc * 1.000_000_119 + (k as f64).sqrt()).sin() + 1e-9 * k as f64;
    }
    acc
}

/// Flattened per-item results of one fan-out at `threads`.
fn fanout(len: usize, salt: f64, threads: usize) -> Vec<f64> {
    Executor::new(threads)
        .map_ordered(len, Vec::new, |scratch: &mut Vec<f64>, range| {
            scratch.clear();
            scratch.extend(range.map(|i| knead(i, salt)));
            scratch.clone()
        })
        .into_iter()
        .flatten()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `map_ordered` output is bit-identical for any thread count.
    #[test]
    fn map_ordered_bit_identical_across_threads(
        len in 0usize..400,
        salt in -4.0f64..4.0,
    ) {
        let reference = fanout(len, salt, 1);
        prop_assert_eq!(reference.len(), len);
        for threads in THREADS {
            prop_assert_eq!(
                bits(&fanout(len, salt, threads)),
                bits(&reference),
                "threads {}", threads
            );
        }
    }

    /// The in-order fold of `fanout_reduce` keeps float accumulation
    /// bit-identical too — the sum is folded in chunk order on the caller.
    #[test]
    fn fanout_reduce_bit_identical_across_threads(
        len in 1usize..400,
        salt in -4.0f64..4.0,
    ) {
        let reference = inet_exec::parallel::fanout_reduce(
            len, 1, || (), |_s, r| r.map(|i| knead(i, salt)).sum::<f64>(), |a, b| a + b,
        );
        for threads in THREADS {
            let got = inet_exec::parallel::fanout_reduce(
                len, threads, || (), |_s, r| r.map(|i| knead(i, salt)).sum::<f64>(), |a, b| a + b,
            );
            prop_assert_eq!(
                got.map(f64::to_bits),
                reference.map(f64::to_bits),
                "threads {}", threads
            );
        }
    }

    /// `try_map_ordered` with a never-cancelled token matches `map_ordered`
    /// exactly for any thread count.
    #[test]
    fn try_map_matches_map_across_threads(
        len in 0usize..300,
        salt in -4.0f64..4.0,
    ) {
        let reference = fanout(len, salt, 1);
        for threads in THREADS {
            let exec = Executor::with_cancel(threads, CancelToken::new());
            let got: Vec<f64> = exec
                .try_map_ordered(len, Vec::new, |scratch: &mut Vec<f64>, range| {
                    scratch.clear();
                    scratch.extend(range.map(|i| knead(i, salt)));
                    scratch.clone()
                })
                .expect("fresh token never cancels")
                .into_iter()
                .flatten()
                .collect();
            prop_assert_eq!(bits(&got), bits(&reference), "threads {}", threads);
        }
    }
}

#[test]
fn empty_fanout_is_empty_for_every_thread_count() {
    for threads in THREADS {
        assert!(fanout(0, 1.0, threads).is_empty(), "threads {threads}");
    }
}

#[test]
fn more_threads_than_chunks_is_fine() {
    let a = fanout(3, 0.5, 1);
    let b = fanout(3, 0.5, 64);
    assert_eq!(bits(&a), bits(&b));
}
