//! Chaos storm on the `exec.task` failpoint.
//!
//! Only built with `--features fault-inject`. 24 seeded rounds derive an
//! action and a pinned scope, install a plan, and drive a batch of fenced
//! tasks through it: the pinned scope fails exactly as the action dictates
//! (as a value — never a crash), every other scope is untouched, and the
//! whole storm replays bit-identically because nothing depends on thread
//! scheduling or wall-clock.

#![cfg(feature = "fault-inject")]

use inet_exec::{run_fenced, Task, TaskError};
use inet_fault::{FaultAction, FaultPlan, PANIC_PREFIX};
use std::sync::Mutex;

/// The failpoint registry is process-global; storm rounds serialize.
static LOCK: Mutex<()> = Mutex::new(());

const SCOPES: u64 = 5;

fn action_for(seed: u64) -> FaultAction {
    match seed % 3 {
        0 => FaultAction::Error,
        1 => FaultAction::Panic,
        _ => FaultAction::Delay(1 + seed % 4),
    }
}

/// One storm round: a compact, comparable transcript of every outcome.
fn storm_round(seed: u64) -> Vec<String> {
    let scope = seed % SCOPES;
    let _plan = inet_fault::install(FaultPlan::single(
        "exec.task",
        Some(scope),
        action_for(seed),
    ));
    (0..SCOPES)
        .map(
            |s| match run_fenced(&Task::new("chaos.storm", s), || s * 10 + 1) {
                Ok(v) => format!("ok:{v}"),
                Err(TaskError::Fault(e)) => format!("fault:{e}"),
                Err(TaskError::Panicked(msg)) => format!("panic:{msg}"),
            },
        )
        .collect()
}

#[test]
fn exec_task_survives_a_24_seed_storm() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    for seed in 0..24u64 {
        let scope = seed % SCOPES;
        let outcomes = storm_round(seed);
        for (s, out) in outcomes.iter().enumerate() {
            let expected_value = format!("ok:{}", s as u64 * 10 + 1);
            if s as u64 == scope {
                match action_for(seed) {
                    FaultAction::Error => assert!(
                        out.starts_with("fault:") && out.contains("exec.task"),
                        "seed {seed}: {out}"
                    ),
                    FaultAction::Panic => assert!(
                        out.starts_with("panic:") && out.contains(PANIC_PREFIX),
                        "seed {seed}: {out}"
                    ),
                    // A delay perturbs timing only; the value must be intact.
                    FaultAction::Delay(_) => assert_eq!(out, &expected_value, "seed {seed}"),
                }
            } else {
                assert_eq!(
                    out, &expected_value,
                    "seed {seed}: scope {s} must be untouched"
                );
            }
        }
        // The storm is pure function of its seed: replay is identical.
        assert_eq!(storm_round(seed), outcomes, "seed {seed} must replay");
    }
    // The fence never leaks: the thread still runs clean tasks afterwards.
    assert_eq!(run_fenced(&Task::new("chaos.storm", 0), || 99u64), Ok(99));
}

#[test]
fn seeded_catalog_plans_may_select_exec_task() {
    let _guard = LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // `FaultPlan::from_seed` draws failpoints from the shared CATALOG, which
    // now includes `exec.task`; whatever a seed picks, fenced tasks must
    // fail as values. Scopes here exceed from_seed's 0..4 pin range on
    // purpose for some tasks, so most runs are clean and all are contained.
    for seed in 0..24u64 {
        let _plan = inet_fault::install(FaultPlan::from_seed(seed));
        for s in 0..8u64 {
            match run_fenced(&Task::new("chaos.catalog", s), || s) {
                Ok(v) => assert_eq!(v, s),
                Err(TaskError::Fault(e)) => assert_eq!(e.failpoint, "exec.task"),
                Err(TaskError::Panicked(msg)) => {
                    assert!(msg.contains(PANIC_PREFIX), "organic panic leaked: {msg}")
                }
            }
        }
    }
}
