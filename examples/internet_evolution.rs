//! The full demand/supply story, end to end:
//!
//! 1. fit growth rates from a (synthetic) host/AS/link archive trace;
//! 2. feed the fitted rate algebra into the competition–adaptation model;
//! 3. grow an AS-map-scale Internet;
//! 4. validate the result against the published 2001 AS-map targets.
//!
//! ```sh
//! cargo run --release --example internet_evolution [size]
//! ```

use inet_model::growth::fit::FittedRates;
use inet_model::prelude::*;

fn main() {
    let size: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6000);

    // --- 1. The environment's history. -----------------------------------
    let mut rng = seeded_rng(2001);
    let trace = InternetTrace::generate(TraceConfig::oregon_era(), &mut rng);
    let fits = FittedRates::fit(&trace).expect("trace is fittable");
    println!("fitted growth rates from the 55-month archive trace:");
    println!("{}\n", fits.render());
    let rates = fits.rates();
    println!(
        "rate algebra: tau = {:.3}, mu = {:.3}, predicted gamma = {:.2}\n",
        rates.tau(),
        rates.mu(),
        rates.gamma()
    );

    // --- 2 + 3. Grow the Internet at those rates. ------------------------
    // The model wants (alpha, beta, delta'); delta' follows from the fitted
    // triple through the closure delta' = alpha*beta/(2 beta - delta).
    let mut params = SerranoParams::paper_2001();
    params.alpha = rates.alpha;
    params.beta = rates.beta;
    params.delta_prime = rates.delta_prime();
    params.target_n = size;
    let model = SerranoModel::new(params);
    let run = model.run(&mut rng);
    println!(
        "model run: {} ASs after {} months, {:.2e} users, bandwidth {}",
        run.network.graph.node_count(),
        run.iterations,
        run.history.last().expect("non-empty").users,
        run.network.graph.total_weight()
    );

    // --- 4. Validate against the published AS-map targets. ---------------
    let (giant, _) = inet_model::graph::traversal::giant_component(&run.network.graph.to_csr());
    let validation = ValidationReport::run(&giant, &inet_model::reference::AS_MAP_2001);
    println!("\nvalidation against the 2001 AS-map targets:");
    println!("{}", validation.render());
}
