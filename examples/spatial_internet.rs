//! Fractal geography and the distance constraint.
//!
//! Demonstrates the spatial substrate: generate a `D_f = 1.5` fractal point
//! set (the empirical dimension of router locations), verify its dimension
//! by box counting, then grow the model with and without the distance
//! constraint and compare link-length distributions and topology.
//!
//! ```sh
//! cargo run --release --example spatial_internet [size]
//! ```

use inet_model::metrics::{ClusteringStats, KnnStats};
use inet_model::prelude::*;
use inet_model::spatial::{box_counting_dimension, FractalSet};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);
    let mut rng = seeded_rng(15);

    // --- The geography itself. -------------------------------------------
    let fractal = FractalSet::internet();
    let points = fractal.generate(30_000, &mut rng);
    let dim = box_counting_dimension(&points).expect("enough points");
    println!(
        "fractal point set: target dimension {:.2}, box-counting estimate {:.2} +- {:.2}",
        fractal.dimension, dim.slope, dim.slope_se
    );

    // --- Model with and without the distance constraint. ------------------
    for distance in [false, true] {
        let mut params = SerranoParams::small(n);
        if !distance {
            params.distance = None;
        }
        let run = SerranoModel::new(params).run(&mut rng);
        let csr = run.network.graph.to_csr();
        let (giant, _) = inet_model::graph::traversal::giant_component(&csr);
        let clustering = ClusteringStats::measure(&giant).mean_local;
        let assort = KnnStats::measure(&giant).assortativity;
        print!(
            "\nmodel {:<16} clustering = {clustering:.3}, assortativity = {assort:+.3}",
            if distance {
                "with distance:"
            } else {
                "without distance:"
            }
        );
        if let Some(positions) = &run.network.positions {
            let lengths: Vec<f64> = run
                .network
                .graph
                .edges()
                .map(|(u, v, _)| positions[u.index()].dist(&positions[v.index()]))
                .collect();
            let summary = inet_model::stats::Summary::from_slice(&lengths);
            let median = inet_model::stats::summary::median(&lengths).expect("non-empty");
            println!(
                "\n  link lengths: mean = {:.3}, median = {:.3}, max = {:.3}",
                summary.mean, median, summary.max
            );
            println!(
                "  (fractal clustering + cost kernel make most links short; \
                 uniform random pairs average ~0.52)"
            );
        } else {
            println!("  (no geometry: links ignore distance entirely)");
        }
    }
}
