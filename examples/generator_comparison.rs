//! Classic topology generators vs the competition–adaptation model,
//! side by side on the measures that discriminate them.
//!
//! ```sh
//! cargo run --release --example generator_comparison [size]
//! ```

use inet_model::graph::traversal::giant_component;
use inet_model::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000);

    let generators: Vec<Box<dyn Generator>> = vec![
        Box::new(Gnp::with_mean_degree(n, 4.2)),
        Box::new(Waxman::with_mean_degree(n, 0.2, 4.2)),
        Box::new(BarabasiAlbert::new(n, 2)),
        Box::new(Glp::internet_2001(n)),
        Box::new(Pfp::internet(n)),
        Box::new(SerranoModel::new(SerranoParams::small(n))),
    ];

    println!(
        "{:<28} {:>7} {:>8} {:>8} {:>8} {:>7} {:>6}",
        "generator", "<k>", "gamma", "clust", "assort", "<l>", "core"
    );
    for (i, generator) in generators.iter().enumerate() {
        let mut rng = child_rng(777, i as u64);
        let net = generator.generate(&mut rng);
        let (giant, _) = giant_component(&net.graph.to_csr());
        let report = TopologyReport::measure(&giant);
        println!(
            "{:<28} {:>7.2} {:>8} {:>8.3} {:>8.3} {:>7.2} {:>6}",
            net.name,
            report.mean_degree,
            report
                .gamma
                .map(|g| format!("{g:.2}"))
                .unwrap_or_else(|| "-".into()),
            report.mean_clustering,
            report.assortativity,
            report.mean_path_length,
            report.coreness,
        );
    }

    println!(
        "\nwhat to look for: ER/Waxman have no heavy tail (gamma meaningless, \
         tiny clustering);\nplain BA gets the tail but gamma ~ 3 and no \
         clustering; GLP/PFP/Serrano land in the\nInternet band \
         (gamma ~ 2.2, clustering ~ 0.3, disassortative, <l> < 4, deep cores)."
    );
}
