//! Quickstart: grow a small Internet with the competition–adaptation model
//! and print its headline measures.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use inet_model::prelude::*;

fn main() {
    // Every stochastic API takes an explicit RNG: fixed seed, fixed result.
    let mut rng = seeded_rng(42);

    // The paper's parameterization, scaled down to 1000 ASs for speed.
    let model = SerranoModel::new(SerranoParams::small(1000));
    let run = model.run(&mut rng);

    println!(
        "grew an Internet in {} iterations ('months'):",
        run.iterations
    );
    println!(
        "  {} ASs, {} inter-AS links, total bandwidth {}",
        run.network.graph.node_count(),
        run.network.graph.edge_count(),
        run.network.graph.total_weight(),
    );

    // All measurement runs on an immutable CSR snapshot of the giant
    // component.
    let csr = run.network.graph.to_csr();
    let (giant, _) = inet_model::graph::traversal::giant_component(&csr);
    let report = TopologyReport::measure(&giant);
    println!("\nheadline measures (giant component):");
    println!("{}", report.render());

    // The environment is part of the model: every AS has a user population.
    let users = run.network.users.as_ref().expect("user pool recorded");
    let biggest = users.iter().cloned().fold(0.0f64, f64::max);
    let total: f64 = users.iter().sum();
    println!(
        "\nbiggest AS serves {:.1}% of the {:.2e} users",
        100.0 * biggest / total,
        total
    );
}
