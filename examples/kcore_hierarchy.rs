//! Drilling into the k-core hierarchy of a generated Internet.
//!
//! The k-core decomposition is the x-ray of an AS map: customer fringe in
//! the low shells, transit providers in the middle, and a small densely
//! interconnected clique at the top. This example grows a model Internet,
//! peels it shell by shell, and inspects who sits in the innermost core.
//!
//! ```sh
//! cargo run --release --example kcore_hierarchy [size]
//! ```

use inet_model::metrics::KCoreDecomposition;
use inet_model::prelude::*;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let mut rng = seeded_rng(23);

    let run = SerranoModel::new(SerranoParams::small(n)).run(&mut rng);
    let csr = run.network.graph.to_csr();
    let (giant, node_map) = inet_model::graph::traversal::giant_component(&csr);
    let decomposition = KCoreDecomposition::measure(&giant);

    println!(
        "giant component: {} ASs, coreness {}",
        giant.node_count(),
        decomposition.coreness()
    );
    println!(
        "\n{:<6} {:>12} {:>12} {:>16}",
        "k", "shell size", "core size", "core mean degree"
    );
    for (k, shell, core) in decomposition.shell_profile() {
        if shell == 0 {
            continue;
        }
        let (core_graph, _) = decomposition.core_subgraph(&giant, k);
        println!(
            "{k:<6} {shell:>12} {core:>12} {:>16.2}",
            core_graph.mean_degree()
        );
    }

    // Who lives in the innermost core? The oldest, biggest ASs.
    let top = decomposition.coreness();
    let (_, members) = decomposition.core_subgraph(&giant, top);
    let users = run.network.users.as_ref().expect("user pool recorded");
    let total_users: f64 = users.iter().sum();
    let core_users: f64 = members.iter().map(|&v| users[node_map[v]]).sum();
    println!(
        "\ninnermost {top}-core: {} ASs holding {:.1}% of all users",
        members.len(),
        100.0 * core_users / total_users
    );
    let mean_birth_rank: f64 =
        members.iter().map(|&v| node_map[v] as f64).sum::<f64>() / members.len().max(1) as f64;
    println!(
        "mean birth rank of core members: {:.0} of {} (lower = older: \
         first movers hold the center)",
        mean_birth_rank,
        csr.node_count()
    );
}
