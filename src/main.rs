//! `inet` — command-line front end of the toolkit.
//!
//! ```text
//! inet generate <model> <n> [seed]      # grow a topology, write edge list to stdout
//! inet measure  <edge-list-file|->      # headline report of a topology
//! inet validate <edge-list-file|->      # compare against the 2001 AS-map targets
//! inet tiers    <edge-list-file|->      # backbone/transit/fringe stratification
//! inet trace    [months]                # synthetic growth trace + fitted rates
//! inet attack   <model|file|->          # percolation / targeted-attack sweep
//! ```
//!
//! `attack` removes nodes under one or more strategies (`--strategy
//! random,degree-recalc,...`), reports the critical fraction `f_c` and the
//! giant-component response `S(f)` per cell, and with `--resume <file>`
//! checkpoints completed cells so an interrupted sweep picks up where it
//! stopped.
//!
//! `measure`, `validate` and `attack` accept `--threads N` (anywhere on the
//! command line) to set the worker-thread count of the parallel kernels; the
//! default is the machine's available parallelism. Results are bit-identical
//! for any thread count.
//!
//! Models: `serrano`, `serrano-nodist`, `ba`, `ab-ext`, `bianconi`, `glp`,
//! `pfp`, `inet`, `waxman`, `er`, `fkp`, `brite`, `goh`, `ws`, `rgg`. Edge lists use the workspace's
//! `# nodes N` + `u v w` format; `-` reads stdin.

use inet_suite::inet_model::growth::fit::FittedRates;
use inet_suite::inet_model::metrics::tiers::TierDecomposition;
use inet_suite::inet_model::prelude::*;
use std::io::Read;

/// Parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Generate {
        model: String,
        n: usize,
        seed: u64,
        check_invariants: bool,
    },
    Measure {
        path: String,
        threads: usize,
        check_invariants: bool,
        deadline_ms: Option<u64>,
    },
    Validate {
        path: String,
        threads: usize,
        check_invariants: bool,
    },
    Tiers {
        path: String,
        check_invariants: bool,
    },
    Trace {
        months: usize,
    },
    Attack(AttackArgs),
    Help,
}

/// A CLI failure with its exit code. The codes are part of the interface
/// (scripts branch on them):
///
/// | code | class | variant |
/// |---|---|---|
/// | 2 | bad usage (flags, arguments) | [`CliError::Usage`] |
/// | 3 | invalid model parameters | [`CliError::Model`] |
/// | 4 | data / IO (unreadable or malformed files) | [`CliError::Data`] |
/// | 5 | checkpoint belongs to a different run | [`CliError::CheckpointIncompatible`] |
/// | 1 | anything else | [`CliError::Other`] |
#[derive(Debug, PartialEq)]
enum CliError {
    /// Malformed command line.
    Usage(String),
    /// A generator rejected its parameters (a [`ModelError`] one-liner).
    Model(String),
    /// Unreadable or malformed input/output data.
    Data(String),
    /// `--resume` pointed at a checkpoint from a different graph or sweep;
    /// the message names the differing field.
    CheckpointIncompatible(String),
    /// Any other failure.
    Other(String),
}

impl CliError {
    fn exit_code(&self) -> i32 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Model(_) => 3,
            CliError::Data(_) => 4,
            CliError::CheckpointIncompatible(_) => 5,
        }
    }

    fn message(&self) -> &str {
        match self {
            CliError::Usage(m)
            | CliError::Model(m)
            | CliError::Data(m)
            | CliError::CheckpointIncompatible(m)
            | CliError::Other(m) => m,
        }
    }
}

/// Arguments of the `attack` subcommand.
#[derive(Debug, PartialEq)]
struct AttackArgs {
    /// Model name, edge-list path, or `-` for stdin.
    source: String,
    /// Nodes when `source` is a model.
    n: usize,
    /// Base seed: model generation and replica streams derive from it.
    seed: u64,
    /// Removal strategies, in report order.
    strategies: Vec<Strategy>,
    /// Replicas per stochastic strategy.
    replicas: usize,
    /// Curve recording stride (0 = auto: ~200 points per curve).
    record: usize,
    /// Checkpoint file for resumable sweeps.
    resume: Option<String>,
    /// Directory for per-cell curve CSVs.
    curves: Option<String>,
    /// Worker threads.
    threads: usize,
    /// Run the full `O(E log d)` graph-invariant check on the input.
    check_invariants: bool,
}

/// Extracts a `--threads N` option (any position), returning the remaining
/// arguments and the thread count (defaulting to the machine's available
/// parallelism).
fn extract_threads(args: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = inet_suite::inet_model::graph::parallel::default_threads();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let value = args
                .get(i + 1)
                .ok_or("--threads: missing <N>")?
                .parse::<usize>()
                .map_err(|_| "--threads: <N> must be an integer".to_string())?;
            if value == 0 {
                return Err("--threads: <N> must be at least 1".into());
            }
            threads = value;
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, threads))
}

/// Extracts a bare boolean flag (any position), returning the remaining
/// arguments and whether the flag was present.
fn extract_flag(args: &[String], name: &str) -> (Vec<String>, bool) {
    let mut found = false;
    let rest = args
        .iter()
        .filter(|a| {
            let hit = a.as_str() == name;
            found |= hit;
            !hit
        })
        .cloned()
        .collect();
    (rest, found)
}

/// Extracts a `--deadline-ms N` option (any position): the soft per-kernel
/// deadline of `measure` — kernels that overrun it are annotated, never
/// killed.
fn extract_deadline(args: &[String]) -> Result<(Vec<String>, Option<u64>), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut deadline = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--deadline-ms" {
            let value = args
                .get(i + 1)
                .ok_or("--deadline-ms: missing <ms>")?
                .parse::<u64>()
                .map_err(|_| "--deadline-ms: <ms> must be an integer".to_string())?;
            deadline = Some(value);
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, deadline))
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let (args, threads) = extract_threads(args)?;
    let (args, check_invariants) = extract_flag(&args, "--check-invariants");
    let (args, deadline_ms) = extract_deadline(&args)?;
    if deadline_ms.is_some() && args.first().map(String::as_str) != Some("measure") {
        return Err("--deadline-ms only applies to 'measure'".into());
    }
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("generate") => {
            let model = args.get(1).ok_or("generate: missing <model>")?.clone();
            let n = args
                .get(2)
                .ok_or("generate: missing <n>")?
                .parse::<usize>()
                .map_err(|_| "generate: <n> must be an integer".to_string())?;
            let seed = match args.get(3) {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| "generate: [seed] must be an integer".to_string())?,
                None => 42,
            };
            if !(8..=500_000).contains(&n) {
                return Err("generate: <n> must lie in 8..=500000".into());
            }
            Ok(Command::Generate {
                model,
                n,
                seed,
                check_invariants,
            })
        }
        Some("measure") => Ok(Command::Measure {
            path: args.get(1).ok_or("measure: missing <file>")?.clone(),
            threads,
            check_invariants,
            deadline_ms,
        }),
        Some("validate") => Ok(Command::Validate {
            path: args.get(1).ok_or("validate: missing <file>")?.clone(),
            threads,
            check_invariants,
        }),
        Some("tiers") => Ok(Command::Tiers {
            path: args.get(1).ok_or("tiers: missing <file>")?.clone(),
            check_invariants,
        }),
        Some("attack") => parse_attack(&args[1..], threads, check_invariants).map(Command::Attack),
        Some("trace") => {
            let months = match args.get(1) {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| "trace: [months] must be an integer".to_string())?,
                None => 55,
            };
            if !(2..=2000).contains(&months) {
                return Err("trace: [months] must lie in 2..=2000".into());
            }
            Ok(Command::Trace { months })
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'inet help')")),
    }
}

/// Parses the `attack` arguments (everything after the subcommand word;
/// `--threads` and `--check-invariants` were already extracted).
fn parse_attack(
    args: &[String],
    threads: usize,
    check_invariants: bool,
) -> Result<AttackArgs, String> {
    fn value<'a>(args: &'a [String], i: &mut usize, name: &str) -> Result<&'a str, String> {
        let v = args
            .get(*i + 1)
            .ok_or_else(|| format!("attack: {name}: missing value"))?;
        *i += 2;
        Ok(v)
    }
    let mut source: Option<String> = None;
    let mut n = 1000usize;
    let mut seed = 42u64;
    let mut strategies = vec![Strategy::Random, Strategy::Degree { recalc: false }];
    let mut replicas = 4usize;
    let mut record = 0usize;
    let mut resume = None;
    let mut curves = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                n = value(args, &mut i, "--n")?
                    .parse()
                    .map_err(|_| "attack: --n must be an integer".to_string())?;
                if !(8..=500_000).contains(&n) {
                    return Err("attack: --n must lie in 8..=500000".into());
                }
            }
            "--seed" => {
                seed = value(args, &mut i, "--seed")?
                    .parse()
                    .map_err(|_| "attack: --seed must be an integer".to_string())?;
            }
            "--strategy" => {
                strategies = value(args, &mut i, "--strategy")?
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| Strategy::parse(s.trim()))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("attack: {e}"))?;
                if strategies.is_empty() {
                    return Err("attack: --strategy needs at least one strategy".into());
                }
            }
            "--replicas" => {
                replicas = value(args, &mut i, "--replicas")?
                    .parse()
                    .map_err(|_| "attack: --replicas must be an integer".to_string())?;
                if !(1..=10_000).contains(&replicas) {
                    return Err("attack: --replicas must lie in 1..=10000".into());
                }
            }
            "--record" => {
                record = value(args, &mut i, "--record")?
                    .parse()
                    .map_err(|_| "attack: --record must be an integer".to_string())?;
            }
            "--resume" => {
                resume = Some(value(args, &mut i, "--resume")?.to_string());
            }
            "--curves" => {
                curves = Some(value(args, &mut i, "--curves")?.to_string());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("attack: unknown option '{flag}'"));
            }
            positional => {
                if source.replace(positional.to_string()).is_some() {
                    return Err("attack: more than one <model|file> given".into());
                }
                i += 1;
            }
        }
    }
    Ok(AttackArgs {
        source: source.ok_or("attack: missing <model|file|->")?,
        n,
        seed,
        strategies,
        replicas,
        record,
        resume,
        curves,
        threads,
        check_invariants,
    })
}

fn build_generator(model: &str, n: usize) -> Result<Box<dyn Generator>, CliError> {
    // Constructors with a fallible `try_new` go through it so that bad
    // model parameters surface as CliError::Model (exit 3), not a panic;
    // the convenience constructors only derive internally-valid params.
    let bad_params =
        |e: inet_suite::inet_model::generators::ModelError| CliError::Model(e.to_string());
    Ok(match model {
        "serrano" => Box::new(SerranoModel::try_new(SerranoParams::small(n)).map_err(bad_params)?),
        "serrano-nodist" => {
            let mut p = SerranoParams::small(n);
            p.distance = None;
            Box::new(SerranoModel::try_new(p).map_err(bad_params)?)
        }
        "ba" => Box::new(BarabasiAlbert::try_new(n, 2).map_err(bad_params)?),
        "glp" => Box::new(Glp::internet_2001(n)),
        "pfp" => Box::new(Pfp::internet(n)),
        "inet" => Box::new(InetLike::as_map_2001(n)),
        "waxman" => Box::new(Waxman::with_mean_degree(n, 0.2, 4.2)),
        "er" => Box::new(Gnp::with_mean_degree(n, 4.2)),
        "fkp" => Box::new(Fkp::try_new(n, 10.0).map_err(bad_params)?),
        "brite" => Box::new(BriteLike::new(
            n,
            2,
            0.2,
            inet_suite::inet_model::generators::brite::Placement::Fractal(1.5),
        )),
        "goh" => Box::new(GohStatic::with_gamma(n, 2, 2.2)),
        "ab-ext" => Box::new(AlbertBarabasiExtended::try_new(n, 1, 0.3, 0.2).map_err(bad_params)?),
        "bianconi" => Box::new(
            BianconiBarabasi::try_new(n, 2, FitnessDistribution::Uniform).map_err(bad_params)?,
        ),
        "ws" => Box::new(WattsStrogatz::try_new(n, 4, 0.1).map_err(bad_params)?),
        "rgg" => Box::new(RandomGeometric::with_mean_degree(n, 4.2)),
        other => return Err(CliError::Usage(format!("unknown model '{other}'"))),
    })
}

fn load_graph(path: &str) -> Result<MultiGraph, CliError> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Data(format!("stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| CliError::Data(format!("{path}: {e}")))?
    };
    inet_suite::inet_model::graph::io::read_edge_list(text.as_bytes())
        .map_err(|e| CliError::Data(format!("{path}: {e}")))
}

/// Runs the full `O(E log d)` [`MultiGraph::validate`] invariant check:
/// always in debug builds (the debug-assert path), in release builds only
/// under `--check-invariants`. A violation is a one-line data error, not a
/// panic.
fn check_graph(g: &MultiGraph, enabled: bool, what: &str) -> Result<(), CliError> {
    if enabled || cfg!(debug_assertions) {
        g.validate()
            .map_err(|e| CliError::Data(format!("{what}: graph invariant check failed: {e}")))?;
    }
    Ok(())
}

fn giant(g: &MultiGraph) -> Csr {
    inet_suite::inet_model::graph::traversal::giant_component(&g.to_csr()).0
}

fn run(cmd: Command) -> Result<(), CliError> {
    match cmd {
        Command::Help => {
            println!(
                "inet — Internet topology modeling toolkit\n\n\
                 usage:\n  \
                 inet generate <model> <n> [seed]   grow a topology (edge list on stdout)\n  \
                 inet measure  <file|->             headline report\n  \
                 inet validate <file|->             compare vs the 2001 AS-map targets\n  \
                 inet tiers    <file|->             backbone/transit/fringe split\n  \
                 inet trace    [months]             synthetic growth trace + rate fits\n  \
                 inet attack   <model|file|->       percolation / targeted-attack sweep\n\n\
                 attack options:\n  \
                 --strategy <a,b,...>               random degree degree-recalc kcore\n  \
                 \u{20}                                  kcore-recalc betweenness betweenness-recalc\n  \
                 --n <N> --seed <S>                 model size / base seed\n  \
                 --replicas <R>                     replicas per stochastic strategy\n  \
                 --record <K>                       curve point every K removals (0 = auto)\n  \
                 --resume <file>                    checkpoint: resume interrupted sweeps\n  \
                 --curves <dir>                     write per-cell curve CSVs\n\n\
                 options:\n  \
                 --threads <N>                      worker threads (measure/validate/attack)\n  \
                 \u{20}                                  (default: available parallelism;\n  \
                 \u{20}                                  results are identical for any N)\n  \
                 --check-invariants                 full graph-invariant check on the input\n  \
                 --deadline-ms <ms>                 measure: flag kernels that overrun <ms>\n\n\
                 exit codes: 0 ok, 1 other, 2 usage, 3 model parameters, 4 data/io,\n\
                 \u{20}           5 incompatible checkpoint\n\n\
                 models: serrano serrano-nodist ba ab-ext bianconi glp pfp inet waxman er fkp brite goh ws rgg"
            );
            Ok(())
        }
        Command::Generate {
            model,
            n,
            seed,
            check_invariants,
        } => {
            let generator = build_generator(&model, n)?;
            let mut rng = seeded_rng(seed);
            let net = generator
                .try_generate(&mut rng)
                .map_err(|e| CliError::Model(e.to_string()))?;
            check_graph(&net.graph, check_invariants, "generate")?;
            let mut out = Vec::new();
            inet_suite::inet_model::graph::io::write_edge_list(&net.graph, &mut out)
                .map_err(|e| CliError::Data(e.to_string()))?;
            print!("{}", String::from_utf8_lossy(&out));
            eprintln!(
                "# generated {} ({} nodes, {} edges, weight {})",
                net.name,
                net.graph.node_count(),
                net.graph.edge_count(),
                net.graph.total_weight()
            );
            Ok(())
        }
        Command::Measure {
            path,
            threads,
            check_invariants,
            deadline_ms,
        } => {
            let g = load_graph(&path)?;
            check_graph(&g, check_invariants, "measure")?;
            let opt = inet_suite::inet_model::metrics::robust::RobustOptions {
                report: inet_suite::inet_model::metrics::report::ReportOptions {
                    threads,
                    ..Default::default()
                },
                soft_deadline_millis: deadline_ms,
            };
            // The robust runner isolates kernel panics and annotates slow
            // kernels, so one bad kernel degrades a column, not the run.
            let robust = inet_suite::inet_model::metrics::robust::measure_robust(&giant(&g), opt);
            println!("{}", robust.report.render());
            if !robust.fully_ok() || deadline_ms.is_some() {
                eprintln!("# kernel status\n{}", robust.render_status());
            }
            for (kernel, reason) in robust.failures() {
                eprintln!("warning: kernel '{kernel}' failed: {reason}");
            }
            Ok(())
        }
        Command::Validate {
            path,
            threads,
            check_invariants,
        } => {
            let g = load_graph(&path)?;
            check_graph(&g, check_invariants, "validate")?;
            let opt = inet_suite::inet_model::metrics::report::ReportOptions {
                threads,
                ..Default::default()
            };
            let v = ValidationReport::run_with(
                &giant(&g),
                &inet_suite::inet_model::reference::AS_MAP_2001,
                opt,
            );
            println!("{}", v.render());
            if v.pass_count() * 2 >= v.outcomes.len() {
                Ok(())
            } else {
                Err(CliError::Other("validation failed on most checks".into()))
            }
        }
        Command::Tiers {
            path,
            check_invariants,
        } => {
            let g = load_graph(&path)?;
            check_graph(&g, check_invariants, "tiers")?;
            let t = TierDecomposition::measure(&giant(&g));
            println!(
                "backbone (core {}): {}\ntransit           : {}\nfringe            : {} ({:.1}%)",
                t.backbone_core,
                t.backbone,
                t.transit,
                t.fringe,
                100.0 * t.fringe_fraction()
            );
            Ok(())
        }
        Command::Attack(args) => run_attack(args),
        Command::Trace { months } => {
            let mut rng = seeded_rng(2001);
            let config = TraceConfig {
                months,
                ..TraceConfig::oregon_era()
            };
            let trace = InternetTrace::generate(config, &mut rng);
            let fits =
                FittedRates::fit(&trace).ok_or(CliError::Other("trace unfittable".into()))?;
            println!("{}", fits.render());
            Ok(())
        }
    }
}

/// Executes an attack sweep and prints the per-cell response summary.
fn run_attack(args: AttackArgs) -> Result<(), CliError> {
    // `-`, an existing file, or anything path-like loads from disk;
    // otherwise the source names a generator model.
    let is_file = args.source == "-"
        || args.source.contains('/')
        || std::path::Path::new(&args.source).exists();
    let csr = if is_file {
        let g = load_graph(&args.source)?;
        check_graph(&g, args.check_invariants, "attack")?;
        g.to_csr()
    } else {
        let generator = build_generator(&args.source, args.n).map_err(|e| match e {
            CliError::Usage(m) => CliError::Usage(format!(
                "attack: {m} (models double as sources; or pass a file path)"
            )),
            other => other,
        })?;
        let mut rng = seeded_rng(args.seed);
        let net = generator
            .try_generate(&mut rng)
            .map_err(|e| CliError::Model(e.to_string()))?;
        check_graph(&net.graph, args.check_invariants, "attack")?;
        eprintln!(
            "# attacking generated {} ({} nodes, {} edges)",
            net.name,
            net.graph.node_count(),
            net.graph.edge_count()
        );
        net.graph.to_csr()
    };
    let record_every = if args.record == 0 {
        (csr.node_count() / 200).max(1)
    } else {
        args.record
    };
    let cfg = SweepConfig {
        strategies: args.strategies,
        replicas: args.replicas,
        base_seed: args.seed,
        threads: args.threads,
        record_every,
        bc_sources: 64,
        checkpoint: args.resume.clone().map(std::path::PathBuf::from),
        ..SweepConfig::default()
    };
    // "Wrong checkpoint" gets its own exit code — the fix (delete the file
    // or repoint --resume) differs from an IO failure's.
    let result = run_sweep(&csr, &cfg).map_err(|e| {
        if e.is_incompatible() {
            CliError::CheckpointIncompatible(format!("attack: {e}"))
        } else {
            CliError::Data(format!("attack: {e}"))
        }
    })?;

    if result.resumed > 0 {
        println!(
            "resumed {} finished cell(s) from {}",
            result.resumed,
            args.resume.as_deref().unwrap_or("checkpoint")
        );
    }
    println!("strategy             rep    f_c   S(.05)  S(.20)  S(.50)");
    for cell in &result.cells {
        println!(
            "{:<20} {:>3}  {:>5.3}   {:>5.3}   {:>5.3}   {:>5.3}{}",
            cell.strategy,
            cell.replica,
            cell.curve.critical_fraction,
            cell.curve.giant_fraction_at(0.05),
            cell.curve.giant_fraction_at(0.20),
            cell.curve.giant_fraction_at(0.50),
            if cell.resampled { "  (resampled)" } else { "" }
        );
    }
    for f in &result.failures {
        eprintln!(
            "warning: {} replica {} failed on attempt {}: {}",
            f.strategy, f.replica, f.attempt, f.message
        );
    }
    for w in &result.warnings {
        eprintln!("warning: {w}");
    }
    if let Some(dir) = &args.curves {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Data(format!("attack: --curves: {e}")))?;
        for cell in &result.cells {
            let mut csv = String::from("removed,giant,edges,mean_component\n");
            for p in &cell.curve.points {
                csv.push_str(&format!(
                    "{},{},{},{}\n",
                    p.removed, p.giant, p.edges, p.mean_component
                ));
            }
            let path = dir.join(format!("{}-r{}.csv", cell.strategy, cell.replica));
            std::fs::write(&path, csv)
                .map_err(|e| CliError::Data(format!("attack: {}: {e}", path.display())))?;
        }
        println!("curves written to {}", dir.display());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).map_err(CliError::Usage).and_then(run) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {}", e.message());
            std::process::exit(e.exit_code());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_generate() {
        assert_eq!(
            parse_args(&strs(&["generate", "ba", "100", "7"])).unwrap(),
            Command::Generate {
                model: "ba".into(),
                n: 100,
                seed: 7,
                check_invariants: false
            }
        );
        assert_eq!(
            parse_args(&strs(&["generate", "glp", "100"])).unwrap(),
            Command::Generate {
                model: "glp".into(),
                n: 100,
                seed: 42,
                check_invariants: false
            }
        );
        assert!(parse_args(&strs(&["generate", "ba"])).is_err());
        assert!(parse_args(&strs(&["generate", "ba", "x"])).is_err());
        assert!(
            parse_args(&strs(&["generate", "ba", "4"])).is_err(),
            "n too small"
        );
    }

    #[test]
    fn parses_file_commands_and_trace() {
        let default = inet_suite::inet_model::graph::parallel::default_threads();
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: default,
                check_invariants: false,
                deadline_ms: None
            }
        );
        assert!(parse_args(&strs(&["measure"])).is_err());
        assert_eq!(
            parse_args(&strs(&["trace"])).unwrap(),
            Command::Trace { months: 55 }
        );
        assert!(parse_args(&strs(&["trace", "1"])).is_err());
        assert!(parse_args(&strs(&["nonsense"])).is_err());
    }

    #[test]
    fn parses_threads_flag_in_any_position() {
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt", "--threads", "3"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: 3,
                check_invariants: false,
                deadline_ms: None
            }
        );
        assert_eq!(
            parse_args(&strs(&["--threads", "8", "validate", "g.txt"])).unwrap(),
            Command::Validate {
                path: "g.txt".into(),
                threads: 8,
                check_invariants: false
            }
        );
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "x"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "0"])).is_err());
    }

    #[test]
    fn help_mentions_threads_option() {
        // The flag must be discoverable from `inet help`.
        run(Command::Help).unwrap();
        assert!(parse_args(&strs(&["--threads", "2", "help"])).is_ok());
    }

    #[test]
    fn parses_attack_with_defaults_and_flags() {
        let default = inet_suite::inet_model::graph::parallel::default_threads();
        assert_eq!(
            parse_args(&strs(&["attack", "ba"])).unwrap(),
            Command::Attack(AttackArgs {
                source: "ba".into(),
                n: 1000,
                seed: 42,
                strategies: vec![Strategy::Random, Strategy::Degree { recalc: false }],
                replicas: 4,
                record: 0,
                resume: None,
                curves: None,
                threads: default,
                check_invariants: false,
            })
        );
        assert_eq!(
            parse_args(&strs(&[
                "attack",
                "serrano",
                "--n",
                "500",
                "--seed",
                "9",
                "--strategy",
                "kcore-recalc,betweenness",
                "--replicas",
                "2",
                "--record",
                "5",
                "--resume",
                "ck.json",
                "--curves",
                "out",
                "--threads",
                "3",
            ]))
            .unwrap(),
            Command::Attack(AttackArgs {
                source: "serrano".into(),
                n: 500,
                seed: 9,
                strategies: vec![
                    Strategy::KCore { recalc: true },
                    Strategy::Betweenness { recalc: false },
                ],
                replicas: 2,
                record: 5,
                resume: Some("ck.json".into()),
                curves: Some("out".into()),
                threads: 3,
                check_invariants: false,
            })
        );
    }

    #[test]
    fn attack_parse_errors_are_one_line_not_panics() {
        // Every malformed invocation must come back as Err, never panic.
        for bad in [
            vec!["attack"],
            vec!["attack", "ba", "--strategy", "voodoo"],
            vec!["attack", "ba", "--strategy", ","],
            vec!["attack", "ba", "--n", "x"],
            vec!["attack", "ba", "--n", "4"],
            vec!["attack", "ba", "--replicas", "0"],
            vec!["attack", "ba", "--replicas"],
            vec!["attack", "ba", "--seed", "-3"],
            vec!["attack", "ba", "--record", "many"],
            vec!["attack", "ba", "--bogus"],
            vec!["attack", "ba", "glp"],
        ] {
            let err = parse_args(&strs(&bad)).unwrap_err();
            assert!(!err.is_empty() && !err.contains('\n'), "{bad:?}: {err}");
        }
        // The unknown-strategy message lists the valid names.
        let err = parse_args(&strs(&["attack", "ba", "--strategy", "voodoo"])).unwrap_err();
        assert!(
            err.contains("unknown strategy") && err.contains("degree-recalc"),
            "{err}"
        );
    }

    #[test]
    fn attack_end_to_end_with_resume_and_curves() {
        let dir = std::env::temp_dir().join("inet_cli_attack_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.json");
        let curves = dir.join("curves");
        let mk = || AttackArgs {
            source: "ba".into(),
            n: 80,
            seed: 11,
            strategies: vec![Strategy::Random, Strategy::Degree { recalc: true }],
            replicas: 2,
            record: 1,
            resume: Some(ckpt.to_str().unwrap().into()),
            curves: Some(curves.to_str().unwrap().into()),
            threads: 2,
            check_invariants: false,
        };
        run_attack(mk()).unwrap();
        assert!(ckpt.exists(), "checkpoint must be written");
        assert!(curves.join("random-r0.csv").exists());
        assert!(curves.join("degree-recalc-r0.csv").exists());
        // Second invocation resumes from the finished checkpoint.
        run_attack(mk()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_check_invariants_and_deadline_flags() {
        match parse_args(&strs(&["measure", "g.txt", "--check-invariants"])).unwrap() {
            Command::Measure {
                check_invariants, ..
            } => assert!(check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["--check-invariants", "generate", "ba", "100"])).unwrap() {
            Command::Generate {
                check_invariants, ..
            } => assert!(check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["attack", "ba", "--check-invariants"])).unwrap() {
            Command::Attack(args) => assert!(args.check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["measure", "g.txt", "--deadline-ms", "250"])).unwrap() {
            Command::Measure { deadline_ms, .. } => assert_eq!(deadline_ms, Some(250)),
            other => panic!("{other:?}"),
        }
        // --deadline-ms is a measure-only concept.
        let err = parse_args(&strs(&["validate", "g.txt", "--deadline-ms", "250"])).unwrap_err();
        assert!(err.contains("measure"), "{err}");
        assert!(parse_args(&strs(&["measure", "g.txt", "--deadline-ms"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--deadline-ms", "x"])).is_err());
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let cases = [
            (CliError::Other("x".into()), 1),
            (CliError::Usage("x".into()), 2),
            (CliError::Model("x".into()), 3),
            (CliError::Data("x".into()), 4),
            (CliError::CheckpointIncompatible("x".into()), 5),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (err, want) in cases {
            assert_eq!(err.exit_code(), want, "{}", err.message());
            assert!(seen.insert(err.exit_code()), "duplicate exit code {want}");
        }
    }

    #[test]
    fn bad_model_parameters_map_to_model_error() {
        // n below the model minimum parses fine structurally but fails
        // generator validation with a Usage error at build time; a model
        // that rejects its own parameters surfaces as CliError::Model.
        let err = run(Command::Generate {
            model: "zzz".into(),
            n: 100,
            seed: 1,
            check_invariants: false,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{}", err.message());
        // parse_args forbids tiny n, but run() is the safety net: a model
        // rejecting its own parameters is a Model error, not a panic.
        let err = run(Command::Generate {
            model: "ba".into(),
            n: 2,
            seed: 1,
            check_invariants: false,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{}", err.message());
        assert!(!err.message().contains('\n'), "{}", err.message());
        let err = run(Command::Measure {
            path: "/nonexistent/inet-graph.txt".into(),
            threads: 1,
            check_invariants: false,
            deadline_ms: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{}", err.message());
    }

    #[test]
    fn incompatible_resume_checkpoint_names_field_and_exits_5() {
        let dir = std::env::temp_dir().join("inet_cli_incompat_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.json");
        let mk = |seed: u64| AttackArgs {
            source: "ba".into(),
            n: 60,
            seed,
            strategies: vec![Strategy::Random],
            replicas: 1,
            record: 0,
            resume: Some(ckpt.to_str().unwrap().into()),
            curves: None,
            threads: 1,
            check_invariants: false,
        };
        run_attack(mk(11)).unwrap();
        let err = run_attack(mk(12)).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{}", err.message());
        assert!(
            err.message().contains("checkpoint incompatible: seed"),
            "{}",
            err.message()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_advertised_model_builds() {
        for model in [
            "serrano",
            "serrano-nodist",
            "ba",
            "ab-ext",
            "bianconi",
            "glp",
            "pfp",
            "inet",
            "waxman",
            "er",
            "fkp",
            "brite",
            "goh",
            "ws",
            "rgg",
        ] {
            assert!(build_generator(model, 100).is_ok(), "{model}");
        }
        assert!(build_generator("zzz", 100).is_err());
    }

    #[test]
    fn generate_and_measure_round_trip_through_files() {
        let generator = build_generator("glp", 200).unwrap();
        let mut rng = seeded_rng(1);
        let net = generator.generate(&mut rng);
        let dir = std::env::temp_dir().join("inet_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let mut out = Vec::new();
        inet_suite::inet_model::graph::io::write_edge_list(&net.graph, &mut out).unwrap();
        std::fs::write(&path, out).unwrap();
        let loaded = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, net.graph);
        // run() paths execute without error.
        run(Command::Measure {
            path: path.to_str().unwrap().into(),
            threads: 2,
            check_invariants: true,
            deadline_ms: None,
        })
        .unwrap();
        run(Command::Tiers {
            path: path.to_str().unwrap().into(),
            check_invariants: false,
        })
        .unwrap();
        run(Command::Trace { months: 20 }).unwrap();
    }
}
