//! `inet` — command-line front end of the toolkit.
//!
//! ```text
//! inet generate <model> <n> [seed]      # grow a topology, write edge list to stdout
//! inet measure  <edge-list-file|->      # headline report of a topology
//! inet validate <edge-list-file|->      # compare against the 2001 AS-map targets
//! inet tiers    <edge-list-file|->      # backbone/transit/fringe stratification
//! inet trace    [months]                # synthetic growth trace + fitted rates
//! ```
//!
//! `measure` and `validate` accept `--threads N` (anywhere on the command
//! line) to set the worker-thread count of the parallel metrics kernels; the
//! default is the machine's available parallelism. Results are bit-identical
//! for any thread count.
//!
//! Models: `serrano`, `serrano-nodist`, `ba`, `ab-ext`, `bianconi`, `glp`,
//! `pfp`, `inet`, `waxman`, `er`, `fkp`, `brite`, `goh`, `ws`, `rgg`. Edge lists use the workspace's
//! `# nodes N` + `u v w` format; `-` reads stdin.

use inet_suite::inet_model::growth::fit::FittedRates;
use inet_suite::inet_model::metrics::tiers::TierDecomposition;
use inet_suite::inet_model::prelude::*;
use std::io::Read;

/// Parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Generate { model: String, n: usize, seed: u64 },
    Measure { path: String, threads: usize },
    Validate { path: String, threads: usize },
    Tiers { path: String },
    Trace { months: usize },
    Help,
}

/// Extracts a `--threads N` option (any position), returning the remaining
/// arguments and the thread count (defaulting to the machine's available
/// parallelism).
fn extract_threads(args: &[String]) -> Result<(Vec<String>, usize), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut threads = inet_suite::inet_model::graph::parallel::default_threads();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threads" {
            let value = args
                .get(i + 1)
                .ok_or("--threads: missing <N>")?
                .parse::<usize>()
                .map_err(|_| "--threads: <N> must be an integer".to_string())?;
            if value == 0 {
                return Err("--threads: <N> must be at least 1".into());
            }
            threads = value;
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok((rest, threads))
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let (args, threads) = extract_threads(args)?;
    match args.first().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("generate") => {
            let model = args.get(1).ok_or("generate: missing <model>")?.clone();
            let n = args
                .get(2)
                .ok_or("generate: missing <n>")?
                .parse::<usize>()
                .map_err(|_| "generate: <n> must be an integer".to_string())?;
            let seed = match args.get(3) {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| "generate: [seed] must be an integer".to_string())?,
                None => 42,
            };
            if !(8..=500_000).contains(&n) {
                return Err("generate: <n> must lie in 8..=500000".into());
            }
            Ok(Command::Generate { model, n, seed })
        }
        Some("measure") => Ok(Command::Measure {
            path: args.get(1).ok_or("measure: missing <file>")?.clone(),
            threads,
        }),
        Some("validate") => Ok(Command::Validate {
            path: args.get(1).ok_or("validate: missing <file>")?.clone(),
            threads,
        }),
        Some("tiers") => Ok(Command::Tiers {
            path: args.get(1).ok_or("tiers: missing <file>")?.clone(),
        }),
        Some("trace") => {
            let months = match args.get(1) {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| "trace: [months] must be an integer".to_string())?,
                None => 55,
            };
            if !(2..=2000).contains(&months) {
                return Err("trace: [months] must lie in 2..=2000".into());
            }
            Ok(Command::Trace { months })
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'inet help')")),
    }
}

fn build_generator(model: &str, n: usize) -> Result<Box<dyn Generator>, String> {
    Ok(match model {
        "serrano" => Box::new(SerranoModel::new(SerranoParams::small(n))),
        "serrano-nodist" => {
            let mut p = SerranoParams::small(n);
            p.distance = None;
            Box::new(SerranoModel::new(p))
        }
        "ba" => Box::new(BarabasiAlbert::new(n, 2)),
        "glp" => Box::new(Glp::internet_2001(n)),
        "pfp" => Box::new(Pfp::internet(n)),
        "inet" => Box::new(InetLike::as_map_2001(n)),
        "waxman" => Box::new(Waxman::with_mean_degree(n, 0.2, 4.2)),
        "er" => Box::new(Gnp::with_mean_degree(n, 4.2)),
        "fkp" => Box::new(Fkp::new(n, 10.0)),
        "brite" => Box::new(BriteLike::new(
            n,
            2,
            0.2,
            inet_suite::inet_model::generators::brite::Placement::Fractal(1.5),
        )),
        "goh" => Box::new(GohStatic::with_gamma(n, 2, 2.2)),
        "ab-ext" => Box::new(AlbertBarabasiExtended::new(n, 1, 0.3, 0.2)),
        "bianconi" => Box::new(BianconiBarabasi::new(n, 2, FitnessDistribution::Uniform)),
        "ws" => Box::new(WattsStrogatz::new(n, 4, 0.1)),
        "rgg" => Box::new(RandomGeometric::with_mean_degree(n, 4.2)),
        other => return Err(format!("unknown model '{other}'")),
    })
}

fn load_graph(path: &str) -> Result<MultiGraph, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    inet_suite::inet_model::graph::io::read_edge_list(text.as_bytes())
        .map_err(|e| format!("{path}: {e}"))
}

fn giant(g: &MultiGraph) -> Csr {
    inet_suite::inet_model::graph::traversal::giant_component(&g.to_csr()).0
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            println!(
                "inet — Internet topology modeling toolkit\n\n\
                 usage:\n  \
                 inet generate <model> <n> [seed]   grow a topology (edge list on stdout)\n  \
                 inet measure  <file|->             headline report\n  \
                 inet validate <file|->             compare vs the 2001 AS-map targets\n  \
                 inet tiers    <file|->             backbone/transit/fringe split\n  \
                 inet trace    [months]             synthetic growth trace + rate fits\n\n\
                 options:\n  \
                 --threads <N>                      worker threads for measure/validate\n  \
                 \u{20}                                  (default: available parallelism;\n  \
                 \u{20}                                  results are identical for any N)\n\n\
                 models: serrano serrano-nodist ba ab-ext bianconi glp pfp inet waxman er fkp brite goh ws rgg"
            );
            Ok(())
        }
        Command::Generate { model, n, seed } => {
            let generator = build_generator(&model, n)?;
            let mut rng = seeded_rng(seed);
            let net = generator.generate(&mut rng);
            let mut out = Vec::new();
            inet_suite::inet_model::graph::io::write_edge_list(&net.graph, &mut out)
                .map_err(|e| e.to_string())?;
            print!("{}", String::from_utf8_lossy(&out));
            eprintln!(
                "# generated {} ({} nodes, {} edges, weight {})",
                net.name,
                net.graph.node_count(),
                net.graph.edge_count(),
                net.graph.total_weight()
            );
            Ok(())
        }
        Command::Measure { path, threads } => {
            let g = load_graph(&path)?;
            let opt = inet_suite::inet_model::metrics::report::ReportOptions {
                threads,
                ..Default::default()
            };
            let report = TopologyReport::measure_with(&giant(&g), opt);
            println!("{}", report.render());
            Ok(())
        }
        Command::Validate { path, threads } => {
            let g = load_graph(&path)?;
            let opt = inet_suite::inet_model::metrics::report::ReportOptions {
                threads,
                ..Default::default()
            };
            let v = ValidationReport::run_with(
                &giant(&g),
                &inet_suite::inet_model::reference::AS_MAP_2001,
                opt,
            );
            println!("{}", v.render());
            if v.pass_count() * 2 >= v.outcomes.len() {
                Ok(())
            } else {
                Err("validation failed on most checks".into())
            }
        }
        Command::Tiers { path } => {
            let g = load_graph(&path)?;
            let t = TierDecomposition::measure(&giant(&g));
            println!(
                "backbone (core {}): {}\ntransit           : {}\nfringe            : {} ({:.1}%)",
                t.backbone_core,
                t.backbone,
                t.transit,
                t.fringe,
                100.0 * t.fringe_fraction()
            );
            Ok(())
        }
        Command::Trace { months } => {
            let mut rng = seeded_rng(2001);
            let config = TraceConfig {
                months,
                ..TraceConfig::oregon_era()
            };
            let trace = InternetTrace::generate(config, &mut rng);
            let fits = FittedRates::fit(&trace).ok_or("trace unfittable")?;
            println!("{}", fits.render());
            Ok(())
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_generate() {
        assert_eq!(
            parse_args(&strs(&["generate", "ba", "100", "7"])).unwrap(),
            Command::Generate {
                model: "ba".into(),
                n: 100,
                seed: 7
            }
        );
        assert_eq!(
            parse_args(&strs(&["generate", "glp", "100"])).unwrap(),
            Command::Generate {
                model: "glp".into(),
                n: 100,
                seed: 42
            }
        );
        assert!(parse_args(&strs(&["generate", "ba"])).is_err());
        assert!(parse_args(&strs(&["generate", "ba", "x"])).is_err());
        assert!(
            parse_args(&strs(&["generate", "ba", "4"])).is_err(),
            "n too small"
        );
    }

    #[test]
    fn parses_file_commands_and_trace() {
        let default = inet_suite::inet_model::graph::parallel::default_threads();
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: default
            }
        );
        assert!(parse_args(&strs(&["measure"])).is_err());
        assert_eq!(
            parse_args(&strs(&["trace"])).unwrap(),
            Command::Trace { months: 55 }
        );
        assert!(parse_args(&strs(&["trace", "1"])).is_err());
        assert!(parse_args(&strs(&["nonsense"])).is_err());
    }

    #[test]
    fn parses_threads_flag_in_any_position() {
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt", "--threads", "3"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: 3
            }
        );
        assert_eq!(
            parse_args(&strs(&["--threads", "8", "validate", "g.txt"])).unwrap(),
            Command::Validate {
                path: "g.txt".into(),
                threads: 8
            }
        );
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "x"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "0"])).is_err());
    }

    #[test]
    fn help_mentions_threads_option() {
        // The flag must be discoverable from `inet help`.
        run(Command::Help).unwrap();
        assert!(parse_args(&strs(&["--threads", "2", "help"])).is_ok());
    }

    #[test]
    fn every_advertised_model_builds() {
        for model in [
            "serrano",
            "serrano-nodist",
            "ba",
            "ab-ext",
            "bianconi",
            "glp",
            "pfp",
            "inet",
            "waxman",
            "er",
            "fkp",
            "brite",
            "goh",
            "ws",
            "rgg",
        ] {
            assert!(build_generator(model, 100).is_ok(), "{model}");
        }
        assert!(build_generator("zzz", 100).is_err());
    }

    #[test]
    fn generate_and_measure_round_trip_through_files() {
        let generator = build_generator("glp", 200).unwrap();
        let mut rng = seeded_rng(1);
        let net = generator.generate(&mut rng);
        let dir = std::env::temp_dir().join("inet_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let mut out = Vec::new();
        inet_suite::inet_model::graph::io::write_edge_list(&net.graph, &mut out).unwrap();
        std::fs::write(&path, out).unwrap();
        let loaded = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, net.graph);
        // run() paths execute without error.
        run(Command::Measure {
            path: path.to_str().unwrap().into(),
            threads: 2,
        })
        .unwrap();
        run(Command::Tiers {
            path: path.to_str().unwrap().into(),
        })
        .unwrap();
        run(Command::Trace { months: 20 }).unwrap();
    }
}
