//! `inet` — command-line front end of the toolkit.
//!
//! ```text
//! inet run      <scenario.toml>         # execute a declarative scenario file
//! inet run      --resume <run-id>       # resume an interrupted journaled run
//! inet runs     list                    # list journaled runs and their progress
//! inet generate <model> <n> [seed]      # grow a topology, write edge list to stdout
//! inet measure  <edge-list-file|->      # headline report of a topology
//! inet validate <edge-list-file|->      # compare against the 2001 AS-map targets
//! inet tiers    <edge-list-file|->      # backbone/transit/fringe stratification
//! inet trace    [months]                # synthetic growth trace + fitted rates
//! inet trace    <run-id>                # span tree of a journaled run
//! inet attack   <model|file|->          # percolation / targeted-attack sweep
//! inet list-models                      # the model registry: params + defaults
//! inet serve    [addr]                  # bounded-queue scenario-job daemon
//! inet submit   <scenario.toml>         # submit a job to a running daemon
//! inet job      <status|result|...>     # query / control daemon jobs
//! ```
//!
//! `run` journals by default: each invocation gets a `runs/<run-id>/`
//! directory (override with `--runs-dir`, disable with `--no-journal`)
//! holding the scenario copy, a content-hashed manifest, an append-only
//! stage journal, and checksummed per-stage artifacts. SIGINT cancels
//! cooperatively — in-flight sweep cells checkpoint, the journal stays
//! consistent, the exact resume command is printed, and the process exits
//! with code 6. A second SIGINT aborts immediately.
//!
//! The CLI is a thin shell over `inet-pipeline`: `run` executes a TOML
//! scenario directly (`--set key=value` overrides any setting), and
//! `generate`/`measure`/`attack` build tiny scenarios in memory, so every
//! command goes through the same staged source → measure → attack → report
//! engine. Model dispatch happens exactly once, in the generator registry —
//! `list-models` prints its names, parameters, and defaults.
//!
//! `attack` removes nodes under one or more strategies (`--strategy
//! random,degree-recalc,...`), reports the critical fraction `f_c` and the
//! giant-component response `S(f)` per cell, and with `--resume <file>`
//! checkpoints completed cells so an interrupted sweep picks up where it
//! stopped.
//!
//! `run`, `measure`, `validate` and `attack` accept `--threads N` (anywhere
//! on the command line) to set the worker-thread count of the parallel
//! kernels; the default is the machine's available parallelism. Results are
//! bit-identical for any thread count.
//!
//! Edge lists use the workspace's `# nodes N` + `u v w` format; `-` reads
//! stdin.

use inet_suite::inet_model::generators::{model_names, registry, ParamValue};
use inet_suite::inet_model::growth::fit::FittedRates;
use inet_suite::inet_model::metrics::tiers::TierDecomposition;
use inet_suite::inet_model::pipeline::run::load_graph;
use inet_suite::inet_model::pipeline::runstore::DEFAULT_RUNS_DIR;
use inet_suite::inet_model::pipeline::service::{self, ServeExit, Service, ServiceConfig};
use inet_suite::inet_model::pipeline::{
    report, run_scenario_with, scan_runs, AttackSpec, ExecOptions, MeasureSpec, PipelineError,
    RunStore, Scenario, Source, Telemetry, TELEMETRY_FILE,
};
use inet_suite::inet_model::prelude::*;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;

/// Set by the SIGINT handler; every [`CancelToken`] handed to the pipeline
/// is linked to it, so one Ctrl-C cancels the whole run cooperatively.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use std::sync::atomic::Ordering;

    // Minimal libc surface, declared by hand so the binary stays
    // dependency-free: installing a SIGINT handler needs nothing more.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn _exit(code: i32) -> !;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_sigint(_: i32) {
        if super::INTERRUPTED.swap(true, Ordering::SeqCst) {
            // Second Ctrl-C: the user means it — skip the cooperative
            // unwind and die the way the default handler would.
            unsafe { _exit(130) }
        }
    }

    extern "C" fn on_sigterm(_: i32) {
        // SIGTERM never escalates: service managers may deliver it more
        // than once while the drain runs its course.
        super::INTERRUPTED.store(true, Ordering::SeqCst);
    }

    /// Installs the cooperative SIGINT handler.
    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }

    /// Installs the SIGTERM → graceful-drain handler (serve mode only:
    /// batch commands keep the default die-on-TERM behavior).
    pub fn install_term() {
        unsafe {
            signal(SIGTERM, on_sigterm);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn install_term() {}
}

/// Executes a scenario with the SIGINT-linked cancel token (and, for
/// journaled `inet run`, the run store).
fn exec(
    scenario: &Scenario,
    store: Option<RunStore>,
) -> Result<inet_suite::inet_model::pipeline::RunOutcome, PipelineError> {
    run_scenario_with(
        scenario,
        &ExecOptions {
            cancel: CancelToken::linked(&INTERRUPTED),
            store,
        },
    )
}

/// Parsed command line.
#[derive(Debug, PartialEq)]
enum Command {
    Run {
        /// Scenario file; `None` when resuming.
        path: Option<String>,
        /// Run id to resume (`--resume`); scenario + overrides replay from
        /// the run's manifest.
        resume: Option<String>,
        sets: Vec<String>,
        threads: Option<usize>,
        check_invariants: bool,
        /// Journal into the run store (`false` under `--no-journal`).
        journal: bool,
        /// Run-store root (`--runs-dir`), default `runs/`.
        runs_dir: Option<String>,
    },
    /// `inet runs list` — the journaled runs and their progress.
    Runs {
        runs_dir: Option<String>,
        /// `--stats`: wall time and stage count per run from the
        /// telemetry artifact (dash for pre-telemetry runs).
        stats: bool,
    },
    Generate {
        model: String,
        n: usize,
        seed: u64,
        check_invariants: bool,
    },
    Measure {
        path: String,
        threads: usize,
        check_invariants: bool,
        deadline_ms: Option<u64>,
    },
    Validate {
        path: String,
        threads: usize,
        check_invariants: bool,
    },
    Tiers {
        path: String,
        check_invariants: bool,
    },
    Trace {
        months: usize,
    },
    /// `inet trace <run-id>` — the stored span tree of a journaled run.
    TraceRun {
        run_id: String,
        runs_dir: Option<String>,
    },
    Attack(AttackArgs),
    ListModels,
    /// `inet serve [addr]` — the bounded-queue scenario-job daemon.
    Serve(ServeArgs),
    /// `inet submit <scenario.toml>` — submit a job to a running daemon.
    Submit {
        path: String,
        addr: String,
        sets: Vec<String>,
        deadline_ms: Option<u64>,
    },
    /// `inet job <action> [id]` — query / control daemon jobs.
    Job {
        action: String,
        id: Option<String>,
        addr: String,
    },
    Help,
}

/// Arguments of the `serve` subcommand.
#[derive(Debug, PartialEq)]
struct ServeArgs {
    /// Listen address (`host:port`; port 0 picks an ephemeral port).
    addr: String,
    /// Worker-pool size.
    workers: usize,
    /// Bounded-queue capacity; submissions beyond it are load-shed.
    queue: usize,
    /// Run-store root shared by daemon incarnations.
    runs_dir: Option<String>,
    /// Default per-job deadline (`--deadline-ms`).
    deadline_ms: Option<u64>,
    /// Graceful-drain budget before in-flight jobs are cancelled.
    drain_timeout_ms: u64,
    /// Per-connection socket read timeout.
    read_timeout_ms: u64,
    /// Oversized-request rejection threshold.
    max_request_bytes: usize,
    /// `--threads` forwarded to jobs that do not pin their own.
    job_threads: Option<usize>,
}

/// Arguments of the `attack` subcommand.
#[derive(Debug, PartialEq)]
struct AttackArgs {
    /// Model name, edge-list path, or `-` for stdin.
    source: String,
    /// Nodes when `source` is a model.
    n: usize,
    /// Base seed: model generation and replica streams derive from it.
    seed: u64,
    /// Removal strategies, in report order.
    strategies: Vec<Strategy>,
    /// Replicas per stochastic strategy.
    replicas: usize,
    /// Curve recording stride (0 = auto: ~200 points per curve).
    record: usize,
    /// Checkpoint file for resumable sweeps.
    resume: Option<String>,
    /// Directory for per-cell curve CSVs.
    curves: Option<String>,
    /// Worker threads.
    threads: usize,
    /// Run the full `O(E log d)` graph-invariant check on the input.
    check_invariants: bool,
}

/// One recognized option: flag name, value metavar (`None` = bare flag),
/// and whether it may be given more than once.
#[derive(Debug, Clone, Copy)]
struct OptSpec {
    name: &'static str,
    metavar: Option<&'static str>,
    repeatable: bool,
}

const fn flag(name: &'static str) -> OptSpec {
    OptSpec {
        name,
        metavar: None,
        repeatable: false,
    }
}

const fn opt(name: &'static str, metavar: &'static str) -> OptSpec {
    OptSpec {
        name,
        metavar: Some(metavar),
        repeatable: false,
    }
}

const fn opt_many(name: &'static str, metavar: &'static str) -> OptSpec {
    OptSpec {
        name,
        metavar: Some(metavar),
        repeatable: true,
    }
}

/// Options recognized in any position of any command line.
const GLOBAL_OPTS: &[OptSpec] = &[
    opt("--threads", "<N>"),
    flag("--check-invariants"),
    opt("--deadline-ms", "<ms>"),
    opt_many("--set", "<key=value>"),
];

/// Options of the `run` subcommand.
const RUN_OPTS: &[OptSpec] = &[
    opt("--resume", "<run-id>"),
    flag("--no-journal"),
    opt("--runs-dir", "<dir>"),
];

/// Options of the `runs` subcommand.
const RUNS_OPTS: &[OptSpec] = &[opt("--runs-dir", "<dir>"), flag("--stats")];

/// Options of the `trace <run-id>` form.
const TRACE_OPTS: &[OptSpec] = &[opt("--runs-dir", "<dir>")];

/// Options of the `serve` subcommand.
const SERVE_OPTS: &[OptSpec] = &[
    opt("--workers", "<N>"),
    opt("--queue", "<N>"),
    opt("--runs-dir", "<dir>"),
    opt("--drain-timeout-ms", "<ms>"),
    opt("--read-timeout-ms", "<ms>"),
    opt("--max-request-bytes", "<B>"),
];

/// Options of the `submit` and `job` subcommands.
const CLIENT_OPTS: &[OptSpec] = &[opt("--addr", "<host:port>")];

/// Default daemon address shared by `serve`, `submit`, and `job`.
const DEFAULT_ADDR: &str = "127.0.0.1:4590";

/// Client-side socket timeout for `submit`/`job` requests.
const CLIENT_TIMEOUT_MS: u64 = 10_000;

/// Options of the `attack` subcommand.
const ATTACK_OPTS: &[OptSpec] = &[
    opt("--n", "<N>"),
    opt("--seed", "<S>"),
    opt("--strategy", "<a,b,...>"),
    opt("--replicas", "<R>"),
    opt("--record", "<K>"),
    opt("--resume", "<file>"),
    opt("--curves", "<dir>"),
];

/// The scan result: extracted option values plus the remaining arguments
/// in their original order. Bare flags record an empty string per hit.
#[derive(Debug, Default)]
struct Scanned {
    rest: Vec<String>,
    seen: BTreeMap<&'static str, Vec<String>>,
}

impl Scanned {
    fn flag(&self, name: &str) -> bool {
        self.seen.contains_key(name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.seen
            .get(name)
            .and_then(|v| v.first())
            .map(String::as_str)
    }

    fn values(&self, name: &str) -> Vec<String> {
        self.seen.get(name).cloned().unwrap_or_default()
    }

    fn integer<T: std::str::FromStr>(
        &self,
        name: &str,
        metavar: &str,
    ) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(v) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("{name}: {metavar} must be an integer")),
        }
    }
}

/// The table-driven option scanner every subcommand shares: pulls the
/// listed options out of `args` (any position), rejects repeats of
/// non-repeatable flags and missing values, and leaves everything it does
/// not recognize in `rest` for positional parsing.
fn scan_options(args: &[String], specs: &[OptSpec]) -> Result<Scanned, String> {
    let mut out = Scanned::default();
    let mut i = 0;
    while i < args.len() {
        let Some(spec) = specs.iter().find(|s| s.name == args[i]) else {
            out.rest.push(args[i].clone());
            i += 1;
            continue;
        };
        let entry = out.seen.entry(spec.name).or_default();
        if !spec.repeatable && !entry.is_empty() {
            return Err(format!("{}: given more than once", spec.name));
        }
        match spec.metavar {
            Some(metavar) => {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{}: missing {metavar}", spec.name))?;
                entry.push(v.clone());
                i += 2;
            }
            None => {
                entry.push(String::new());
                i += 1;
            }
        }
    }
    Ok(out)
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let scanned = scan_options(args, GLOBAL_OPTS)?;
    let threads_flag: Option<usize> = scanned.integer("--threads", "<N>")?;
    if threads_flag == Some(0) {
        return Err("--threads: <N> must be at least 1".into());
    }
    let threads =
        threads_flag.unwrap_or_else(inet_suite::inet_model::graph::parallel::default_threads);
    let check_invariants = scanned.flag("--check-invariants");
    let deadline_ms: Option<u64> = scanned.integer("--deadline-ms", "<ms>")?;
    let sets = scanned.values("--set");
    let args = scanned.rest;
    let first = args.first().map(String::as_str);
    if deadline_ms.is_some() && !matches!(first, Some("measure" | "serve" | "submit")) {
        return Err("--deadline-ms only applies to 'measure', 'serve', and 'submit'".into());
    }
    if !sets.is_empty() && !matches!(first, Some("run" | "submit")) {
        return Err("--set only applies to 'run' and 'submit'".into());
    }
    match first {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("run") => {
            let scanned = scan_options(&args[1..], RUN_OPTS).map_err(|e| format!("run: {e}"))?;
            let resume = scanned.value("--resume").map(str::to_string);
            let runs_dir = scanned.value("--runs-dir").map(str::to_string);
            let mut path: Option<String> = None;
            for arg in &scanned.rest {
                if arg.starts_with("--") {
                    return Err(format!("run: unknown option '{arg}'"));
                }
                if path.replace(arg.clone()).is_some() {
                    return Err("run: more than one <scenario.toml> given".into());
                }
            }
            if resume.is_some() {
                if path.is_some() {
                    return Err(
                        "run: give either <scenario.toml> or --resume <run-id>, not both".into(),
                    );
                }
                if !sets.is_empty() {
                    return Err(
                        "run: --set cannot combine with --resume (overrides replay from the \
                         run's manifest)"
                            .into(),
                    );
                }
                if scanned.flag("--no-journal") {
                    return Err("run: --no-journal cannot combine with --resume".into());
                }
            } else if path.is_none() {
                return Err("run: missing <scenario.toml>".into());
            }
            Ok(Command::Run {
                path,
                resume,
                sets,
                threads: threads_flag,
                check_invariants,
                journal: !scanned.flag("--no-journal"),
                runs_dir,
            })
        }
        Some("runs") => {
            let scanned = scan_options(&args[1..], RUNS_OPTS).map_err(|e| format!("runs: {e}"))?;
            if scanned.rest.len() != 1 || scanned.rest[0] != "list" {
                return Err("runs: usage: inet runs list [--runs-dir <dir>] [--stats]".into());
            }
            Ok(Command::Runs {
                runs_dir: scanned.value("--runs-dir").map(str::to_string),
                stats: scanned.flag("--stats"),
            })
        }
        Some("list-models") => Ok(Command::ListModels),
        Some("generate") => {
            let model = args.get(1).ok_or("generate: missing <model>")?.clone();
            let n = args
                .get(2)
                .ok_or("generate: missing <n>")?
                .parse::<usize>()
                .map_err(|_| "generate: <n> must be an integer".to_string())?;
            let seed = match args.get(3) {
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| "generate: [seed] must be an integer".to_string())?,
                None => 42,
            };
            if !(8..=500_000).contains(&n) {
                return Err("generate: <n> must lie in 8..=500000".into());
            }
            Ok(Command::Generate {
                model,
                n,
                seed,
                check_invariants,
            })
        }
        Some("measure") => Ok(Command::Measure {
            path: args.get(1).ok_or("measure: missing <file>")?.clone(),
            threads,
            check_invariants,
            deadline_ms,
        }),
        Some("validate") => Ok(Command::Validate {
            path: args.get(1).ok_or("validate: missing <file>")?.clone(),
            threads,
            check_invariants,
        }),
        Some("tiers") => Ok(Command::Tiers {
            path: args.get(1).ok_or("tiers: missing <file>")?.clone(),
            check_invariants,
        }),
        Some("attack") => parse_attack(&args[1..], threads, check_invariants).map(Command::Attack),
        Some("serve") => {
            let scanned =
                scan_options(&args[1..], SERVE_OPTS).map_err(|e| format!("serve: {e}"))?;
            let mut addr: Option<String> = None;
            for arg in &scanned.rest {
                if arg.starts_with("--") {
                    return Err(format!("serve: unknown option '{arg}'"));
                }
                if addr.replace(arg.clone()).is_some() {
                    return Err("serve: more than one [addr] given".into());
                }
            }
            let serve_err = |e: String| format!("serve: {e}");
            let workers = scanned
                .integer::<usize>("--workers", "<N>")
                .map_err(serve_err)?
                .unwrap_or(2);
            if !(1..=256).contains(&workers) {
                return Err("serve: --workers must lie in 1..=256".into());
            }
            let queue = scanned
                .integer::<usize>("--queue", "<N>")
                .map_err(serve_err)?
                .unwrap_or(32);
            if !(1..=100_000).contains(&queue) {
                return Err("serve: --queue must lie in 1..=100000".into());
            }
            let drain_timeout_ms = scanned
                .integer::<u64>("--drain-timeout-ms", "<ms>")
                .map_err(serve_err)?
                .unwrap_or(20_000);
            let read_timeout_ms = scanned
                .integer::<u64>("--read-timeout-ms", "<ms>")
                .map_err(serve_err)?
                .unwrap_or(5_000);
            if read_timeout_ms == 0 {
                return Err("serve: --read-timeout-ms must be at least 1".into());
            }
            let max_request_bytes = scanned
                .integer::<usize>("--max-request-bytes", "<B>")
                .map_err(serve_err)?
                .unwrap_or(1 << 20);
            if max_request_bytes < 64 {
                return Err("serve: --max-request-bytes must be at least 64".into());
            }
            Ok(Command::Serve(ServeArgs {
                addr: addr.unwrap_or_else(|| DEFAULT_ADDR.to_string()),
                workers,
                queue,
                runs_dir: scanned.value("--runs-dir").map(str::to_string),
                deadline_ms,
                drain_timeout_ms,
                read_timeout_ms,
                max_request_bytes,
                job_threads: threads_flag,
            }))
        }
        Some("submit") => {
            let scanned =
                scan_options(&args[1..], CLIENT_OPTS).map_err(|e| format!("submit: {e}"))?;
            let mut path: Option<String> = None;
            for arg in &scanned.rest {
                if arg.starts_with("--") {
                    return Err(format!("submit: unknown option '{arg}'"));
                }
                if path.replace(arg.clone()).is_some() {
                    return Err("submit: more than one <scenario.toml> given".into());
                }
            }
            Ok(Command::Submit {
                path: path.ok_or("submit: missing <scenario.toml>")?,
                addr: scanned.value("--addr").unwrap_or(DEFAULT_ADDR).to_string(),
                sets,
                deadline_ms,
            })
        }
        Some("job") => {
            let scanned = scan_options(&args[1..], CLIENT_OPTS).map_err(|e| format!("job: {e}"))?;
            for arg in &scanned.rest {
                if arg.starts_with("--") {
                    return Err(format!("job: unknown option '{arg}'"));
                }
            }
            let action = scanned
                .rest
                .first()
                .ok_or(
                    "job: usage: inet job <status|result|cancel> <id> | \
                     inet job <stats|metrics|drain>",
                )?
                .clone();
            let id = scanned.rest.get(1).cloned();
            if scanned.rest.len() > 2 {
                return Err("job: too many arguments".into());
            }
            match action.as_str() {
                "status" | "result" | "cancel" => {
                    if id.is_none() {
                        return Err(format!("job: {action} needs a <job-id>"));
                    }
                }
                "stats" | "metrics" | "drain" => {
                    if id.is_some() {
                        return Err(format!("job: {action} takes no <job-id>"));
                    }
                }
                other => {
                    return Err(format!(
                        "job: unknown action '{other}' (expected \
                         status/result/cancel/stats/metrics/drain)"
                    ))
                }
            }
            Ok(Command::Job {
                action,
                id,
                addr: scanned.value("--addr").unwrap_or(DEFAULT_ADDR).to_string(),
            })
        }
        Some("trace") => {
            let scanned =
                scan_options(&args[1..], TRACE_OPTS).map_err(|e| format!("trace: {e}"))?;
            let mut target: Option<String> = None;
            for arg in &scanned.rest {
                if arg.starts_with("--") {
                    return Err(format!("trace: unknown option '{arg}'"));
                }
                if target.replace(arg.clone()).is_some() {
                    return Err("trace: more than one argument given".into());
                }
            }
            let runs_dir = scanned.value("--runs-dir").map(str::to_string);
            // An integer is the legacy synthetic growth trace over that
            // many months; anything else is a journaled run id whose
            // stored span tree prints.
            match target {
                Some(arg) => match arg.parse::<usize>() {
                    Ok(months) => {
                        if runs_dir.is_some() {
                            return Err("trace: --runs-dir only applies to a <run-id>".into());
                        }
                        if !(2..=2000).contains(&months) {
                            return Err("trace: [months] must lie in 2..=2000".into());
                        }
                        Ok(Command::Trace { months })
                    }
                    Err(_) => Ok(Command::TraceRun {
                        run_id: arg,
                        runs_dir,
                    }),
                },
                None => {
                    if runs_dir.is_some() {
                        return Err("trace: --runs-dir only applies to a <run-id>".into());
                    }
                    Ok(Command::Trace { months: 55 })
                }
            }
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'inet help')")),
    }
}

/// Parses the `attack` arguments (everything after the subcommand word;
/// the global options were already extracted).
fn parse_attack(
    args: &[String],
    threads: usize,
    check_invariants: bool,
) -> Result<AttackArgs, String> {
    let scanned = scan_options(args, ATTACK_OPTS).map_err(|e| format!("attack: {e}"))?;
    let mut source: Option<String> = None;
    for arg in &scanned.rest {
        if arg.starts_with("--") {
            return Err(format!("attack: unknown option '{arg}'"));
        }
        if source.replace(arg.clone()).is_some() {
            return Err("attack: more than one <model|file> given".into());
        }
    }
    let attack_err = |e: String| format!("attack: {e}");
    let n = scanned
        .integer::<usize>("--n", "<N>")
        .map_err(attack_err)?
        .unwrap_or(1000);
    if !(8..=500_000).contains(&n) {
        return Err("attack: --n must lie in 8..=500000".into());
    }
    let seed = scanned
        .integer::<u64>("--seed", "<S>")
        .map_err(attack_err)?
        .unwrap_or(42);
    let strategies = match scanned.value("--strategy") {
        None => vec![Strategy::Random, Strategy::Degree { recalc: false }],
        Some(list) => {
            let parsed = list
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| Strategy::parse(s.trim()))
                .collect::<Result<Vec<_>, _>>()
                .map_err(attack_err)?;
            if parsed.is_empty() {
                return Err("attack: --strategy needs at least one strategy".into());
            }
            parsed
        }
    };
    let replicas = scanned
        .integer::<usize>("--replicas", "<R>")
        .map_err(attack_err)?
        .unwrap_or(4);
    if !(1..=10_000).contains(&replicas) {
        return Err("attack: --replicas must lie in 1..=10000".into());
    }
    let record = scanned
        .integer::<usize>("--record", "<K>")
        .map_err(attack_err)?
        .unwrap_or(0);
    Ok(AttackArgs {
        source: source.ok_or("attack: missing <model|file|->")?,
        n,
        seed,
        strategies,
        replicas,
        record,
        resume: scanned.value("--resume").map(str::to_string),
        curves: scanned.value("--curves").map(str::to_string),
        threads,
        check_invariants,
    })
}

/// Runs the full `O(E log d)` [`MultiGraph::validate`] invariant check:
/// always in debug builds (the debug-assert path), in release builds only
/// under `--check-invariants`. A violation is a one-line data error, not a
/// panic.
fn check_graph(g: &MultiGraph, enabled: bool, what: &str) -> Result<(), PipelineError> {
    if enabled || cfg!(debug_assertions) {
        g.validate().map_err(|e| {
            PipelineError::Data(format!("{what}: graph invariant check failed: {e}"))
        })?;
    }
    Ok(())
}

fn giant(g: &MultiGraph) -> Csr {
    inet_suite::inet_model::graph::traversal::giant_component(&g.to_csr()).0
}

/// The `--help` text. Model names come from the registry so the listing
/// can never drift from what `generate`/`attack` accept.
fn help_text() -> String {
    format!(
        "inet — Internet topology modeling toolkit\n\n\
         usage:\n  \
         inet run      <scenario.toml>      execute a declarative scenario file\n  \
         inet run      --resume <run-id>    resume an interrupted journaled run\n  \
         inet runs     list [--stats]      journaled runs and their progress\n  \
         inet generate <model> <n> [seed]   grow a topology (edge list on stdout)\n  \
         inet measure  <file|->             headline report\n  \
         inet validate <file|->             compare vs the 2001 AS-map targets\n  \
         inet tiers    <file|->             backbone/transit/fringe split\n  \
         inet trace    [months]             synthetic growth trace + rate fits\n  \
         inet trace    <run-id>             span tree of a journaled run\n  \
         inet attack   <model|file|->       percolation / targeted-attack sweep\n  \
         inet list-models                   model registry: parameters + defaults\n  \
         inet serve    [addr]               scenario-job daemon (default {DEFAULT_ADDR})\n  \
         inet submit   <scenario.toml>      submit a job; prints the job id\n  \
         inet job      <action> [id]        status/result/cancel <id>;\n  \
         \u{20}                                  stats/metrics/drain\n\n\
         run options:\n  \
         --set <key=value>                  override a scenario setting (repeatable);\n  \
         \u{20}                                  bare keys tune [generator] parameters\n  \
         --resume <run-id>                  resume from the first uncommitted stage\n  \
         --no-journal                       skip the run store (no resume possible)\n  \
         --runs-dir <dir>                   run-store root (default: runs/)\n\n\
         attack options:\n  \
         --strategy <a,b,...>               random degree degree-recalc kcore\n  \
         \u{20}                                  kcore-recalc betweenness betweenness-recalc\n  \
         --n <N> --seed <S>                 model size / base seed\n  \
         --replicas <R>                     replicas per stochastic strategy\n  \
         --record <K>                       curve point every K removals (0 = auto)\n  \
         --resume <file>                    checkpoint: resume interrupted sweeps\n  \
         --curves <dir>                     write per-cell curve CSVs\n\n\
         serve options:\n  \
         --workers <N> --queue <N>          worker pool size / bounded-queue capacity\n  \
         --runs-dir <dir>                   job journal root (shared across restarts)\n  \
         --deadline-ms <ms>                 default per-job deadline\n  \
         --drain-timeout-ms <ms>            drain budget before in-flight jobs cancel\n  \
         --read-timeout-ms <ms>             per-connection socket read timeout\n  \
         --max-request-bytes <B>            oversized-request rejection threshold\n  \
         --addr <host:port>                 submit/job: daemon address\n\n\
         options:\n  \
         --threads <N>                      worker threads (run/measure/validate/attack)\n  \
         \u{20}                                  (default: available parallelism;\n  \
         \u{20}                                  results are identical for any N)\n  \
         --check-invariants                 full graph-invariant check on the input\n  \
         --deadline-ms <ms>                 measure: flag kernels that overrun <ms>\n\n\
         exit codes: 0 ok, 1 other, 2 usage, 3 model parameters, 4 data/io,\n\
         \u{20}           5 incompatible checkpoint, 6 interrupted (resumable)\n\
         serve:      0 clean drain (SIGTERM/first ^C/'job drain'), 6 drain timeout\n\
         \u{20}           (in-flight jobs checkpointed, resume on restart), 130 second ^C\n\n\
         models: {}",
        model_names().join(" ")
    )
}

/// The `list-models` listing: every registered model with its parameter
/// schema, defaults, and one-line docs.
fn list_models_text() -> String {
    let mut out = String::new();
    for spec in registry() {
        let _ = writeln!(out, "{} — {}", spec.name, spec.summary);
        for p in &spec.schema {
            let _ = writeln!(
                out,
                "    {:<22} = {:<12} {}",
                p.key,
                p.default.to_string(),
                p.doc
            );
        }
    }
    out
}

fn run(cmd: Command) -> Result<(), PipelineError> {
    match cmd {
        Command::Help => {
            println!("{}", help_text());
            Ok(())
        }
        Command::ListModels => {
            print!("{}", list_models_text());
            Ok(())
        }
        Command::Run {
            path,
            resume,
            sets,
            threads,
            check_invariants,
            journal,
            runs_dir,
        } => {
            let root = std::path::PathBuf::from(runs_dir.as_deref().unwrap_or(DEFAULT_RUNS_DIR));
            let (mut scenario, store) = if let Some(id) = &resume {
                let store = RunStore::open(&root, id)?;
                let text = store.scenario_text()?;
                let scenario = Scenario::parse_with_overrides(&text, store.overrides()).map_err(
                    |e| match e {
                        PipelineError::Scenario(m) => {
                            PipelineError::Scenario(format!("run '{id}': stored scenario: {m}"))
                        }
                        other => other,
                    },
                )?;
                eprintln!("# resuming run {id}");
                (scenario, Some(store))
            } else {
                let path = path.as_deref().unwrap_or_default();
                // One read serves both parsing and the journaled copy, so
                // the stored scenario can never diverge from what ran.
                let text = std::fs::read_to_string(path).map_err(|e| {
                    PipelineError::Data(format!("cannot read scenario '{path}': {e}"))
                })?;
                let scenario =
                    Scenario::parse_with_overrides(&text, &sets).map_err(|e| match e {
                        PipelineError::Scenario(m) => {
                            PipelineError::Scenario(format!("{path}: {m}"))
                        }
                        other => other,
                    })?;
                let store = if journal {
                    Some(RunStore::create(&root, &scenario.name, &text, path, &sets)?)
                } else {
                    None
                };
                (scenario, store)
            };
            if let Some(t) = threads {
                scenario.threads = Some(t);
            }
            if check_invariants {
                scenario.check_invariants = true;
            }
            let outcome = exec(&scenario, store)?;
            print!("{}", outcome.summary);
            for w in &outcome.warnings {
                eprintln!("warning: {w}");
            }
            for sink in &outcome.written {
                eprintln!("# {sink}");
            }
            if let Some(id) = &outcome.run_id {
                eprintln!("# run {id} complete");
            }
            Ok(())
        }
        Command::Runs { runs_dir, stats } => {
            let root = std::path::PathBuf::from(runs_dir.as_deref().unwrap_or(DEFAULT_RUNS_DIR));
            // Corrupted or partial run directories must not abort the
            // listing — each gets a one-line warning, the rest still print.
            let scan = scan_runs(&root);
            for skipped in &scan.skipped {
                eprintln!("warning: skipping run {skipped}");
            }
            if scan.runs.is_empty() {
                println!("no runs under {}", root.display());
            } else {
                for info in scan.runs {
                    if stats {
                        // Pre-telemetry and torn artifacts print dashes,
                        // never an error — old runs stay listable.
                        let (wall, stages) =
                            match Telemetry::load_path(&root.join(&info.id).join(TELEMETRY_FILE)) {
                                Some(t) => {
                                    let (us, stages) = t.totals();
                                    (format!("{:.3}s", us as f64 / 1e6), stages.to_string())
                                }
                                None => ("-".to_string(), "-".to_string()),
                            };
                        println!(
                            "{:<44} {:<24} {:<12} {:>10} {:>7}",
                            info.id,
                            info.name,
                            info.status(),
                            wall,
                            stages
                        );
                    } else {
                        println!("{:<44} {:<24} {}", info.id, info.name, info.status());
                    }
                }
            }
            Ok(())
        }
        Command::Generate {
            model,
            n,
            seed,
            check_invariants,
        } => {
            let mut overrides = BTreeMap::new();
            overrides.insert("n".to_string(), ParamValue::Int(n as i64));
            let mut scenario = Scenario::from_generator(&model, &overrides, seed)?;
            scenario.check_invariants = check_invariants;
            scenario.report.edge_list = Some("-".to_string());
            let outcome = exec(&scenario, None)?;
            eprintln!("# {}", outcome.source);
            Ok(())
        }
        Command::Measure {
            path,
            threads,
            check_invariants,
            deadline_ms,
        } => {
            let mut scenario = Scenario::new(path.clone(), Source::Input { path });
            scenario.threads = Some(threads);
            scenario.check_invariants = check_invariants;
            scenario.measure = Some(MeasureSpec {
                deadline_ms,
                ..MeasureSpec::default()
            });
            let outcome = exec(&scenario, None)?;
            let Some(robust) = outcome.robust else {
                return Err(PipelineError::Stage("measure produced no report".into()));
            };
            println!("{}", robust.report.render());
            if !robust.fully_ok() || deadline_ms.is_some() {
                eprintln!("# kernel status\n{}", robust.render_status());
            }
            for w in &outcome.warnings {
                eprintln!("warning: {w}");
            }
            Ok(())
        }
        Command::Validate {
            path,
            threads,
            check_invariants,
        } => {
            let g = load_graph(&path)?;
            check_graph(&g, check_invariants, "validate")?;
            let opt = inet_suite::inet_model::metrics::ReportOptions {
                threads,
                ..Default::default()
            };
            let v = ValidationReport::run_with(
                &giant(&g),
                &inet_suite::inet_model::reference::AS_MAP_2001,
                opt,
            );
            println!("{}", v.render());
            if v.pass_count() * 2 >= v.outcomes.len() {
                Ok(())
            } else {
                Err(PipelineError::Stage(
                    "validation failed on most checks".into(),
                ))
            }
        }
        Command::Tiers {
            path,
            check_invariants,
        } => {
            let g = load_graph(&path)?;
            check_graph(&g, check_invariants, "tiers")?;
            let t = TierDecomposition::measure(&giant(&g));
            println!(
                "backbone (core {}): {}\ntransit           : {}\nfringe            : {} ({:.1}%)",
                t.backbone_core,
                t.backbone,
                t.transit,
                t.fringe,
                100.0 * t.fringe_fraction()
            );
            Ok(())
        }
        Command::Attack(args) => run_attack(args),
        Command::Serve(args) => run_serve(args),
        Command::Submit {
            path,
            addr,
            sets,
            deadline_ms,
        } => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| PipelineError::Data(format!("cannot read scenario '{path}': {e}")))?;
            // Validate locally first so obvious mistakes fail with the
            // usual exit classes before a daemon round-trip.
            Scenario::parse_with_overrides(&text, &sets).map_err(|e| match e {
                PipelineError::Scenario(m) => PipelineError::Scenario(format!("{path}: {m}")),
                other => other,
            })?;
            let line = service::encode_submit(&text, &path, &sets, deadline_ms);
            let resp = service::request(&addr, &line, CLIENT_TIMEOUT_MS)?;
            let status = service::response_field(&resp, "status").unwrap_or_default();
            match status.as_str() {
                "accepted" => {
                    let id = service::response_field(&resp, "job").ok_or_else(|| {
                        PipelineError::Data(format!("daemon response missing job id: {resp}"))
                    })?;
                    let position = service::response_field(&resp, "position").unwrap_or_default();
                    eprintln!("# accepted at queue position {position}");
                    println!("{id}");
                    Ok(())
                }
                "rejected" => {
                    let why = service::response_field(&resp, "error").unwrap_or_default();
                    let hint = service::response_field(&resp, "retry_after_ms").unwrap_or_default();
                    Err(PipelineError::Data(format!(
                        "submission rejected: {why} (retry after {hint} ms)"
                    )))
                }
                _ => Err(PipelineError::Data(format!(
                    "submit failed: {}",
                    service::response_field(&resp, "error").unwrap_or(resp)
                ))),
            }
        }
        Command::Job { action, id, addr } => {
            let line = service::encode_cmd(&action, id.as_deref());
            let resp = service::request(&addr, &line, CLIENT_TIMEOUT_MS)?;
            let status = service::response_field(&resp, "status").unwrap_or_default();
            if status == "error" {
                return Err(PipelineError::Data(format!(
                    "daemon: {}",
                    service::response_field(&resp, "error").unwrap_or(resp)
                )));
            }
            if action == "result" {
                // Print the stage-3 summary verbatim so the output diffs
                // cleanly against a one-shot `inet run` of the same file.
                return match status.as_str() {
                    "done" => {
                        let summary =
                            service::response_field(&resp, "summary").ok_or_else(|| {
                                PipelineError::Data(format!(
                                    "daemon response missing summary: {resp}"
                                ))
                            })?;
                        print!("{summary}");
                        Ok(())
                    }
                    other => Err(PipelineError::Stage(format!(
                        "job is {other}: {}",
                        service::response_field(&resp, "error").unwrap_or_default()
                    ))),
                };
            }
            if action == "metrics" {
                // Print the raw Prometheus exposition (the response field
                // is JSON-escaped for the one-line protocol) so the output
                // pipes straight into a scraper or promtool.
                let expo = service::response_field(&resp, "metrics").ok_or_else(|| {
                    PipelineError::Data(format!("daemon response missing metrics: {resp}"))
                })?;
                print!("{expo}");
                return Ok(());
            }
            println!("{resp}");
            Ok(())
        }
        Command::TraceRun { run_id, runs_dir } => {
            let root = std::path::PathBuf::from(runs_dir.as_deref().unwrap_or(DEFAULT_RUNS_DIR));
            // Open validates the run exists (typo-friendly error with the
            // 'runs list' hint); the telemetry artifact itself is optional.
            let store = RunStore::open(&root, &run_id)?;
            let telemetry = Telemetry::load(&store);
            if telemetry.spans.is_empty() {
                println!("run {run_id}: no telemetry recorded (pre-telemetry run?)");
            } else {
                let (wall, _) = telemetry.totals();
                println!(
                    "run {run_id}: {} session(s), {:.3}s total",
                    telemetry.sessions,
                    wall as f64 / 1e6
                );
                print!("{}", telemetry.render_trace());
            }
            Ok(())
        }
        Command::Trace { months } => {
            let mut rng = seeded_rng(2001);
            let config = TraceConfig {
                months,
                ..TraceConfig::oregon_era()
            };
            let trace = InternetTrace::generate(config, &mut rng);
            let fits =
                FittedRates::fit(&trace).ok_or(PipelineError::Stage("trace unfittable".into()))?;
            println!("{}", fits.render());
            Ok(())
        }
    }
}

/// Runs the scenario-job daemon until a drain trigger (SIGTERM, first
/// SIGINT, or the protocol `drain` command) completes. Exit codes follow
/// the documented table: clean drain 0, drain timeout 6 (in-flight jobs
/// are checkpointed and resume on restart), second SIGINT 130.
fn run_serve(args: ServeArgs) -> Result<(), PipelineError> {
    sig::install_term();
    let cfg = ServiceConfig {
        addr: args.addr,
        workers: args.workers,
        queue_capacity: args.queue,
        runs_dir: std::path::PathBuf::from(args.runs_dir.as_deref().unwrap_or(DEFAULT_RUNS_DIR)),
        default_deadline_ms: args.deadline_ms,
        drain_timeout_ms: args.drain_timeout_ms,
        read_timeout_ms: args.read_timeout_ms,
        write_timeout_ms: args.read_timeout_ms,
        max_request_bytes: args.max_request_bytes,
        job_threads: args.job_threads,
        drain_flag: Some(&INTERRUPTED),
        quiet: false,
        ..ServiceConfig::default()
    };
    let service = Service::bind(cfg)?;
    // Scripts parse this line for the resolved (possibly ephemeral) port.
    println!("# serving on {}", service.local_addr()?);
    match service.run()? {
        ServeExit::Clean => Ok(()),
        ServeExit::DrainTimeout => Err(PipelineError::Interrupted(
            "drain timed out; in-flight jobs are checkpointed and resume on the next \
             'inet serve'"
                .into(),
        )),
    }
}

/// Executes an attack sweep (as a one-stage scenario) and prints the
/// per-cell response summary in the legacy format.
fn run_attack(args: AttackArgs) -> Result<(), PipelineError> {
    // `-`, an existing file, or anything path-like loads from disk;
    // otherwise the source names a generator model.
    let is_file = args.source == "-"
        || args.source.contains('/')
        || std::path::Path::new(&args.source).exists();
    let mut scenario = if is_file {
        Scenario::new(
            args.source.clone(),
            Source::Input {
                path: args.source.clone(),
            },
        )
    } else {
        let mut overrides = BTreeMap::new();
        overrides.insert("n".to_string(), ParamValue::Int(args.n as i64));
        Scenario::from_generator(&args.source, &overrides, args.seed).map_err(|e| match e {
            PipelineError::Scenario(m) => PipelineError::Scenario(format!(
                "attack: {m} (models double as sources; or pass a file path)"
            )),
            other => other,
        })?
    };
    scenario.threads = Some(args.threads);
    scenario.check_invariants = args.check_invariants;
    scenario.attack = Some(AttackSpec {
        strategies: args.strategies.clone(),
        replicas: args.replicas,
        record_every: args.record,
        seed: args.seed,
        checkpoint: args.resume.clone().map(std::path::PathBuf::from),
        bc_sources: 64,
    });
    if let Some(dir) = &args.curves {
        scenario.report.curves = Some(std::path::PathBuf::from(dir));
    }
    let outcome = exec(&scenario, None)?;
    if !is_file {
        eprintln!("# attacking {}", outcome.source);
    }
    let Some(sweep) = outcome.sweep else {
        return Err(PipelineError::Stage("attack produced no sweep".into()));
    };
    let checkpoint = args.resume.as_deref().map(std::path::Path::new);
    if let Some(line) = report::resumed_line(&sweep, checkpoint) {
        println!("{line}");
    }
    print!("{}", report::attack_table(&sweep));
    for w in &outcome.warnings {
        eprintln!("warning: {w}");
    }
    if let Some(dir) = &args.curves {
        println!("curves written to {}", std::path::Path::new(dir).display());
    }
    Ok(())
}

fn main() {
    sig::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args)
        .map_err(PipelineError::Scenario)
        .and_then(run)
    {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {}", e.message());
            std::process::exit(e.exit_code());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inet_suite::inet_model::generators::lookup;
    use inet_suite::inet_model::pipeline::run::RunOutcome;

    fn strs(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&strs(&["--help"])).unwrap(), Command::Help);
        assert_eq!(
            parse_args(&strs(&["list-models"])).unwrap(),
            Command::ListModels
        );
    }

    #[test]
    fn parses_generate() {
        assert_eq!(
            parse_args(&strs(&["generate", "ba", "100", "7"])).unwrap(),
            Command::Generate {
                model: "ba".into(),
                n: 100,
                seed: 7,
                check_invariants: false
            }
        );
        assert_eq!(
            parse_args(&strs(&["generate", "glp", "100"])).unwrap(),
            Command::Generate {
                model: "glp".into(),
                n: 100,
                seed: 42,
                check_invariants: false
            }
        );
        assert!(parse_args(&strs(&["generate", "ba"])).is_err());
        assert!(parse_args(&strs(&["generate", "ba", "x"])).is_err());
        assert!(
            parse_args(&strs(&["generate", "ba", "4"])).is_err(),
            "n too small"
        );
    }

    #[test]
    fn parses_file_commands_and_trace() {
        let default = inet_suite::inet_model::graph::parallel::default_threads();
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: default,
                check_invariants: false,
                deadline_ms: None
            }
        );
        assert!(parse_args(&strs(&["measure"])).is_err());
        assert_eq!(
            parse_args(&strs(&["trace"])).unwrap(),
            Command::Trace { months: 55 }
        );
        assert!(parse_args(&strs(&["trace", "1"])).is_err());
        // A non-integer argument is a run id; --runs-dir rides along.
        assert_eq!(
            parse_args(&strs(&["trace", "demo-1a2b3c4d"])).unwrap(),
            Command::TraceRun {
                run_id: "demo-1a2b3c4d".into(),
                runs_dir: None
            }
        );
        assert_eq!(
            parse_args(&strs(&["trace", "demo-1a2b3c4d", "--runs-dir", "rr"])).unwrap(),
            Command::TraceRun {
                run_id: "demo-1a2b3c4d".into(),
                runs_dir: Some("rr".into())
            }
        );
        assert!(parse_args(&strs(&["trace", "--runs-dir", "rr"])).is_err());
        assert!(parse_args(&strs(&["trace", "20", "--runs-dir", "rr"])).is_err());
        assert!(parse_args(&strs(&["trace", "a", "b"])).is_err());
        assert!(parse_args(&strs(&["nonsense"])).is_err());
    }

    #[test]
    fn parses_threads_flag_in_any_position() {
        assert_eq!(
            parse_args(&strs(&["measure", "g.txt", "--threads", "3"])).unwrap(),
            Command::Measure {
                path: "g.txt".into(),
                threads: 3,
                check_invariants: false,
                deadline_ms: None
            }
        );
        assert_eq!(
            parse_args(&strs(&["--threads", "8", "validate", "g.txt"])).unwrap(),
            Command::Validate {
                path: "g.txt".into(),
                threads: 8,
                check_invariants: false
            }
        );
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "x"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--threads", "0"])).is_err());
    }

    #[test]
    fn option_scanner_rejects_missing_values_non_integers_and_repeats() {
        for (args, needle) in [
            (vec!["measure", "g.txt", "--threads"], "missing <N>"),
            (
                vec!["measure", "g.txt", "--threads", "x"],
                "must be an integer",
            ),
            (
                vec!["measure", "g.txt", "--threads", "2", "--threads", "3"],
                "given more than once",
            ),
            (
                vec![
                    "measure",
                    "g.txt",
                    "--check-invariants",
                    "--check-invariants",
                ],
                "given more than once",
            ),
            (vec!["measure", "g.txt", "--deadline-ms"], "missing <ms>"),
            (
                vec!["attack", "ba", "--replicas", "two"],
                "must be an integer",
            ),
            (
                vec!["attack", "ba", "--resume", "a", "--resume", "b"],
                "given more than once",
            ),
        ] {
            let e = parse_args(&strs(&args)).unwrap_err();
            assert!(e.contains(needle), "{args:?}: {e}");
        }
    }

    #[test]
    fn parses_run_with_repeatable_set_overrides() {
        match parse_args(&strs(&[
            "run",
            "s.toml",
            "--set",
            "n=100",
            "--set",
            "seed=1",
            "--threads",
            "2",
        ]))
        .unwrap()
        {
            Command::Run {
                path,
                resume,
                sets,
                threads,
                check_invariants,
                journal,
                runs_dir,
            } => {
                assert_eq!(path.as_deref(), Some("s.toml"));
                assert_eq!(resume, None);
                assert_eq!(sets, strs(&["n=100", "seed=1"]));
                assert_eq!(threads, Some(2));
                assert!(!check_invariants);
                assert!(journal, "journaling is the default");
                assert_eq!(runs_dir, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_args(&strs(&["run"])).is_err());
        // --set is a run-only option.
        let e = parse_args(&strs(&["measure", "g.txt", "--set", "n=1"])).unwrap_err();
        assert!(e.contains("run"), "{e}");
    }

    #[test]
    fn parses_resume_no_journal_and_runs_list() {
        match parse_args(&strs(&["run", "--resume", "demo-1a2b3c4d"])).unwrap() {
            Command::Run { path, resume, .. } => {
                assert_eq!(path, None);
                assert_eq!(resume.as_deref(), Some("demo-1a2b3c4d"));
            }
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&[
            "run",
            "s.toml",
            "--no-journal",
            "--runs-dir",
            "rr",
        ]))
        .unwrap()
        {
            Command::Run {
                journal, runs_dir, ..
            } => {
                assert!(!journal);
                assert_eq!(runs_dir.as_deref(), Some("rr"));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_args(&strs(&["runs", "list"])).unwrap(),
            Command::Runs {
                runs_dir: None,
                stats: false
            }
        );
        assert_eq!(
            parse_args(&strs(&["runs", "list", "--stats"])).unwrap(),
            Command::Runs {
                runs_dir: None,
                stats: true
            }
        );
        // The rejections, each with a one-line reason.
        for (bad, needle) in [
            (vec!["run", "s.toml", "--resume", "id"], "not both"),
            (vec!["run", "--resume", "id", "--set", "n=1"], "--set"),
            (
                vec!["run", "--resume", "id", "--no-journal"],
                "--no-journal",
            ),
            (vec!["run", "a.toml", "b.toml"], "more than one"),
            (vec!["run", "--bogus", "s.toml"], "unknown option"),
            (vec!["runs"], "usage"),
            (vec!["runs", "prune"], "usage"),
        ] {
            let e = parse_args(&strs(&bad)).unwrap_err();
            assert!(e.contains(needle), "{bad:?}: {e}");
        }
    }

    #[test]
    fn help_and_list_models_name_every_registered_model() {
        let names = model_names();
        assert_eq!(names.len(), 15, "{names:?}");
        let help = help_text();
        assert!(help.contains(&names.join(" ")), "help models line drifted");
        assert!(help.contains("inet run"), "run missing from help");
        assert!(help.contains("--set"), "--set missing from help");
        let listing = list_models_text();
        for spec in registry() {
            assert!(listing.contains(spec.name), "{} not listed", spec.name);
            assert!(
                listing.contains(spec.summary),
                "{} summary not listed",
                spec.name
            );
            for p in &spec.schema {
                assert!(
                    listing.contains(p.key),
                    "{}.{} not listed",
                    spec.name,
                    p.key
                );
            }
        }
        run(Command::Help).unwrap();
        run(Command::ListModels).unwrap();
        assert!(parse_args(&strs(&["--threads", "2", "help"])).is_ok());
    }

    #[test]
    fn parses_attack_with_defaults_and_flags() {
        let default = inet_suite::inet_model::graph::parallel::default_threads();
        assert_eq!(
            parse_args(&strs(&["attack", "ba"])).unwrap(),
            Command::Attack(AttackArgs {
                source: "ba".into(),
                n: 1000,
                seed: 42,
                strategies: vec![Strategy::Random, Strategy::Degree { recalc: false }],
                replicas: 4,
                record: 0,
                resume: None,
                curves: None,
                threads: default,
                check_invariants: false,
            })
        );
        assert_eq!(
            parse_args(&strs(&[
                "attack",
                "serrano",
                "--n",
                "500",
                "--seed",
                "9",
                "--strategy",
                "kcore-recalc,betweenness",
                "--replicas",
                "2",
                "--record",
                "5",
                "--resume",
                "ck.json",
                "--curves",
                "out",
                "--threads",
                "3",
            ]))
            .unwrap(),
            Command::Attack(AttackArgs {
                source: "serrano".into(),
                n: 500,
                seed: 9,
                strategies: vec![
                    Strategy::KCore { recalc: true },
                    Strategy::Betweenness { recalc: false },
                ],
                replicas: 2,
                record: 5,
                resume: Some("ck.json".into()),
                curves: Some("out".into()),
                threads: 3,
                check_invariants: false,
            })
        );
    }

    #[test]
    fn attack_parse_errors_are_one_line_not_panics() {
        // Every malformed invocation must come back as Err, never panic.
        for bad in [
            vec!["attack"],
            vec!["attack", "ba", "--strategy", "voodoo"],
            vec!["attack", "ba", "--strategy", ","],
            vec!["attack", "ba", "--n", "x"],
            vec!["attack", "ba", "--n", "4"],
            vec!["attack", "ba", "--replicas", "0"],
            vec!["attack", "ba", "--replicas"],
            vec!["attack", "ba", "--seed", "-3"],
            vec!["attack", "ba", "--record", "many"],
            vec!["attack", "ba", "--bogus"],
            vec!["attack", "ba", "glp"],
        ] {
            let err = parse_args(&strs(&bad)).unwrap_err();
            assert!(!err.is_empty() && !err.contains('\n'), "{bad:?}: {err}");
        }
        // The unknown-strategy message lists the valid names.
        let err = parse_args(&strs(&["attack", "ba", "--strategy", "voodoo"])).unwrap_err();
        assert!(
            err.contains("unknown strategy") && err.contains("degree-recalc"),
            "{err}"
        );
    }

    #[test]
    fn attack_end_to_end_with_resume_and_curves() {
        let dir = std::env::temp_dir().join("inet_cli_attack_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.json");
        let curves = dir.join("curves");
        let mk = || AttackArgs {
            source: "ba".into(),
            n: 80,
            seed: 11,
            strategies: vec![Strategy::Random, Strategy::Degree { recalc: true }],
            replicas: 2,
            record: 1,
            resume: Some(ckpt.to_str().unwrap().into()),
            curves: Some(curves.to_str().unwrap().into()),
            threads: 2,
            check_invariants: false,
        };
        run_attack(mk()).unwrap();
        assert!(ckpt.exists(), "checkpoint must be written");
        assert!(curves.join("random-r0.csv").exists());
        assert!(curves.join("degree-recalc-r0.csv").exists());
        // Second invocation resumes from the finished checkpoint.
        run_attack(mk()).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_check_invariants_and_deadline_flags() {
        match parse_args(&strs(&["measure", "g.txt", "--check-invariants"])).unwrap() {
            Command::Measure {
                check_invariants, ..
            } => assert!(check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["--check-invariants", "generate", "ba", "100"])).unwrap() {
            Command::Generate {
                check_invariants, ..
            } => assert!(check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["attack", "ba", "--check-invariants"])).unwrap() {
            Command::Attack(args) => assert!(args.check_invariants),
            other => panic!("{other:?}"),
        }
        match parse_args(&strs(&["measure", "g.txt", "--deadline-ms", "250"])).unwrap() {
            Command::Measure { deadline_ms, .. } => assert_eq!(deadline_ms, Some(250)),
            other => panic!("{other:?}"),
        }
        // --deadline-ms is a measure-only concept.
        let err = parse_args(&strs(&["validate", "g.txt", "--deadline-ms", "250"])).unwrap_err();
        assert!(err.contains("measure"), "{err}");
        assert!(parse_args(&strs(&["measure", "g.txt", "--deadline-ms"])).is_err());
        assert!(parse_args(&strs(&["measure", "g.txt", "--deadline-ms", "x"])).is_err());
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let cases = [
            (PipelineError::Stage("x".into()), 1),
            (PipelineError::Scenario("x".into()), 2),
            (PipelineError::Model("x".into()), 3),
            (PipelineError::Data("x".into()), 4),
            (PipelineError::CheckpointIncompatible("x".into()), 5),
            (PipelineError::Interrupted("x".into()), 6),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (err, want) in cases {
            assert_eq!(err.exit_code(), want, "{}", err.message());
            assert!(seen.insert(err.exit_code()), "duplicate exit code {want}");
        }
    }

    #[test]
    fn bad_model_parameters_map_to_model_error() {
        // An unknown model is a usage-class error (exit 2, with a
        // did-you-mean suggestion from the registry)...
        let err = run(Command::Generate {
            model: "zzz".into(),
            n: 100,
            seed: 1,
            check_invariants: false,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 2, "{}", err.message());
        // ...while a model rejecting its own parameters is a Model error
        // (exit 3), not a panic: parse_args forbids tiny n, but run() is
        // the safety net.
        let err = run(Command::Generate {
            model: "ba".into(),
            n: 2,
            seed: 1,
            check_invariants: false,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{}", err.message());
        assert!(!err.message().contains('\n'), "{}", err.message());
        let err = run(Command::Measure {
            path: "/nonexistent/inet-graph.txt".into(),
            threads: 1,
            check_invariants: false,
            deadline_ms: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{}", err.message());
    }

    #[test]
    fn incompatible_resume_checkpoint_names_field_and_exits_5() {
        let dir = std::env::temp_dir().join("inet_cli_incompat_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("state.json");
        let mk = |seed: u64| AttackArgs {
            source: "ba".into(),
            n: 60,
            seed,
            strategies: vec![Strategy::Random],
            replicas: 1,
            record: 0,
            resume: Some(ckpt.to_str().unwrap().into()),
            curves: None,
            threads: 1,
            check_invariants: false,
        };
        run_attack(mk(11)).unwrap();
        let err = run_attack(mk(12)).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{}", err.message());
        assert!(
            err.message().contains("checkpoint incompatible: seed"),
            "{}",
            err.message()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_registered_model_builds() {
        // The registry is the single dispatch point; every entry's builder
        // must accept its own defaults at a small size.
        assert_eq!(registry().len(), 15);
        for spec in registry() {
            let params = spec.resolve_n(100).unwrap();
            assert!((spec.build)(&params).is_ok(), "{}", spec.name);
        }
        let err = lookup("zzz").unwrap_err();
        assert!(err.to_string().contains("unknown model"), "{err}");
    }

    #[test]
    fn generate_and_measure_round_trip_through_files() {
        let spec = lookup("glp").unwrap();
        let generator = (spec.build)(&spec.resolve_n(200).unwrap()).unwrap();
        let mut rng = seeded_rng(1);
        let net = generator.generate(&mut rng);
        let dir = std::env::temp_dir().join("inet_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let mut out = Vec::new();
        inet_suite::inet_model::graph::io::write_edge_list(&net.graph, &mut out).unwrap();
        std::fs::write(&path, out).unwrap();
        let loaded = load_graph(path.to_str().unwrap()).unwrap();
        assert_eq!(loaded, net.graph);
        // run() paths execute without error.
        run(Command::Measure {
            path: path.to_str().unwrap().into(),
            threads: 2,
            check_invariants: true,
            deadline_ms: None,
        })
        .unwrap();
        run(Command::Tiers {
            path: path.to_str().unwrap().into(),
            check_invariants: false,
        })
        .unwrap();
        run(Command::Trace { months: 20 }).unwrap();
    }

    #[test]
    fn run_subcommand_executes_scenario_files_with_overrides() {
        let dir = std::env::temp_dir().join("inet_cli_run_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = dir.join("demo.toml");
        let summary = dir.join("summary.txt");
        std::fs::write(
            &scenario,
            format!(
                "[generator]\nmodel = \"ba\"\nn = 500\nseed = 1\n\
                 [measure]\nmetrics = [\"degree\", \"giant\"]\n\
                 [report]\nsummary = \"{}\"\n",
                summary.display()
            ),
        )
        .unwrap();
        run(Command::Run {
            path: Some(scenario.to_str().unwrap().into()),
            resume: None,
            sets: vec!["n=60".into()],
            threads: Some(2),
            check_invariants: false,
            journal: false,
            runs_dir: None,
        })
        .unwrap();
        let text = std::fs::read_to_string(&summary).unwrap();
        assert!(text.contains("scenario: ba"), "{text}");
        assert!(text.contains("generated BA"), "{text}");
        // A missing scenario file is a data error (exit 4).
        let err = run(Command::Run {
            path: Some(dir.join("absent.toml").to_str().unwrap().into()),
            resume: None,
            sets: Vec::new(),
            threads: None,
            check_invariants: false,
            journal: false,
            runs_dir: None,
        })
        .unwrap_err();
        assert_eq!(err.exit_code(), 4, "{}", err.message());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journaled_run_resumes_through_the_cli_to_an_identical_summary() {
        let dir = std::env::temp_dir().join("inet_cli_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = dir.join("demo.toml");
        let summary = dir.join("summary.txt");
        let runs = dir.join("runs");
        std::fs::write(
            &scenario,
            format!(
                "[generator]\nmodel = \"ba\"\nn = 80\nseed = 3\n\
                 [measure]\nmetrics = [\"degree\", \"giant\"]\n\
                 [report]\nsummary = \"{}\"\n",
                summary.display()
            ),
        )
        .unwrap();
        let mk = |resume: Option<String>| Command::Run {
            path: resume.is_none().then(|| scenario.to_str().unwrap().into()),
            resume,
            sets: Vec::new(),
            threads: Some(1),
            check_invariants: false,
            journal: true,
            runs_dir: Some(runs.to_str().unwrap().into()),
        };
        run(mk(None)).unwrap();
        let first = std::fs::read_to_string(&summary).unwrap();
        let infos = scan_runs(&runs).runs;
        assert_eq!(infos.len(), 1, "{infos:?}");
        assert_eq!(infos[0].status(), "complete");
        // `inet runs list` renders without error on the same store, with
        // and without the telemetry columns.
        run(Command::Runs {
            runs_dir: Some(runs.to_str().unwrap().into()),
            stats: false,
        })
        .unwrap();
        run(Command::Runs {
            runs_dir: Some(runs.to_str().unwrap().into()),
            stats: true,
        })
        .unwrap();
        // The journaled run stored its span tree; `inet trace <run-id>`
        // renders it.
        let store = RunStore::open(&runs, &infos[0].id).unwrap();
        let telemetry = Telemetry::load(&store);
        assert!(
            !telemetry.spans.is_empty(),
            "journaled run must persist telemetry"
        );
        assert!(telemetry.render_trace().contains("run[0]"));
        run(Command::TraceRun {
            run_id: infos[0].id.clone(),
            runs_dir: Some(runs.to_str().unwrap().into()),
        })
        .unwrap();
        // Resume of a complete run replays every stage byte-identically,
        // and the replayed session accumulates into the telemetry.
        run(mk(Some(infos[0].id.clone()))).unwrap();
        assert_eq!(std::fs::read_to_string(&summary).unwrap(), first);
        let resumed = Telemetry::load(&store);
        assert_eq!(resumed.sessions, telemetry.sessions + 1);
        assert!(resumed.spans.len() > telemetry.spans.len());
        // Resuming an unknown id is a data error naming `runs list`.
        let err = run(mk(Some("nope-00000000".into()))).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{}", err.message());
        assert!(err.message().contains("runs list"), "{}", err.message());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The acceptance check of the scenario pipeline: running the shipped
    /// `scenarios/serrano_attack.toml` must reproduce the legacy
    /// `inet attack serrano` sweep bit-identically, for any thread count.
    /// (`--set` shrinks the run so the test stays fast; the override path
    /// is itself part of what is being proven.)
    #[test]
    fn serrano_attack_scenario_is_bit_identical_to_the_legacy_attack_path() {
        let sets = ["n=150", "attack.replicas=2"];
        let expected = {
            // The legacy path, spelled out: SerranoParams::small(n), the
            // base seed for generation and sweep, auto record granularity.
            let model = SerranoModel::try_new(SerranoParams::small(150)).unwrap();
            let mut rng = seeded_rng(42);
            let csr = model.try_generate(&mut rng).unwrap().graph.to_csr();
            let cfg = SweepConfig {
                strategies: vec![Strategy::Random, Strategy::Degree { recalc: true }],
                replicas: 2,
                base_seed: 42,
                threads: 1,
                record_every: (csr.node_count() / 200).max(1),
                bc_sources: 64,
                ..SweepConfig::default()
            };
            run_sweep(&csr, &cfg).unwrap()
        };
        for threads in [1usize, 2, 7] {
            let mut scenario =
                Scenario::load(std::path::Path::new("scenarios/serrano_attack.toml"), &sets)
                    .unwrap();
            scenario.threads = Some(threads);
            // Skip the figure sinks; only the numbers are under test.
            scenario.report = Default::default();
            let outcome: RunOutcome = exec(&scenario, None).unwrap();
            assert_eq!(
                outcome.sweep.unwrap().cells,
                expected.cells,
                "threads={threads}"
            );
        }
    }
}
