//! # inet-suite — examples and integration tests for the `inet-model`
//! toolkit
//!
//! This crate holds the runnable entry points of the workspace:
//!
//! * `examples/quickstart.rs` — smallest possible end-to-end run;
//! * `examples/internet_evolution.rs` — the full demand/supply story:
//!   growth-rate fitting, a paper-scale model run, validation against the
//!   published AS-map targets;
//! * `examples/generator_comparison.rs` — classic generators vs the
//!   competition–adaptation model, side by side;
//! * `examples/spatial_internet.rs` — fractal geography and what the
//!   distance constraint does to the topology;
//! * `examples/kcore_hierarchy.rs` — drilling into the nested k-core
//!   hierarchy of a generated Internet.
//!
//! Run any of them with `cargo run --release --example <name>`.
//!
//! The library surface itself lives in [`inet_model`]; this crate only
//! re-exports it for the examples' convenience.

#![forbid(unsafe_code)]

pub use inet_model;
